package core

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"authmem/internal/ctr"
	"authmem/internal/tree"
)

// Sharded engine: the protected region partitioned into N independent
// shards for true parallel reads and writes.
//
// The paper's integrity machinery partitions naturally: counter groups are
// 4KB-aligned, the Bonsai Merkle tree covers counter blocks, and nothing in
// the verification of one block-group ever touches another's state. A shard
// therefore owns a contiguous 1/N slice of the block address space and
// everything below it — ciphertext arena, ECC/MAC lanes, counter scheme
// state, quarantine set, verified-counter cache, and its own Merkle subtree
// whose trusted top level is that shard's SRAM. A tiny combining layer
// (internal/tree.CombineRoots) hashes the N subtree roots into one trusted
// digest for persist/resume, so the whole memory still pins to a single
// root while no per-access path crosses a shard boundary.
//
// Concurrency model: one mutex per shard. Single-block operations lock only
// their shard; multi-block spans are split at shard boundaries and the
// segments run concurrently, each under its own shard lock. Statistics are
// kept per shard and merged on read, so observability never becomes the
// serialization point the seed's single global lock was.
//
// Isolation is cryptographic, not just structural: each shard's MAC and
// encryption keys are derived from the master key material and the shard's
// position, so ciphertext or metadata relocated between shards can never
// verify, and identical local addresses in different shards never share a
// keystream pad.

// shardCounterCacheEntries is each shard's verified-counter cache size: 512
// entries x 64B images = Table 1's 32KB metadata cache budget, per shard.
// Private per-shard caches are an architectural property of sharding — the
// total trusted cache grows linearly with shard count, like per-core L1s.
const shardCounterCacheEntries = 512

// shardBlockCacheEntries is each shard's verified-block cache size: 32K
// entries x 64B plaintext = a 2MB on-chip cache slice per shard, the data
// half of the trust boundary (blockcache.go). Like per-core LLC slices, the
// aggregate trusted plaintext capacity grows linearly with shard count.
const shardBlockCacheEntries = 32768

// shardGroupBytes is the finest partition boundary: one 4KB block-group.
// Counter groups must never straddle shards.
const shardGroupBytes = ctr.GroupBlocks * BlockBytes

// shardReencryptWorkers bounds each shard's group re-encryption pool
// (reencrypt.go): at least 2 so the parallel sweep path is always the one
// exercised (and race-checked) in production configuration, at most 4 so N
// shards sweeping at once cannot oversubscribe the machine — the pool lives
// only for the microseconds of one 64-block sweep.
const shardReencryptWorkers = 4

// enableShardPipeline turns on the write-path machinery every shard runs
// with by default, mirroring the per-shard caches above: the deferred-Merkle
// write pipeline (writepipe.go) with its default epoch bound, and — when the
// integrity tree covers metadata only — the parallel group re-encryption
// pool. DataTree configurations keep the serial sweep: their per-block seal
// updates shared tree state, which the worker pool must not touch.
func enableShardPipeline(eng *Engine) error {
	if err := eng.EnableWritePipeline(0); err != nil {
		return err
	}
	if eng.cfg.DataTree {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	if workers > shardReencryptWorkers {
		workers = shardReencryptWorkers
	}
	return eng.EnableParallelReencrypt(workers)
}

// engineShard is one shard: an ordinary Engine over a 1/N slice of the
// region, guarded by its own lock.
type engineShard struct {
	mu  sync.Mutex
	eng *Engine
	// base is the shard's first byte address in the global space.
	base uint64
}

// ShardedEngine is a shard-parallel authenticated encrypted memory.
type ShardedEngine struct {
	cfg        Config // global configuration (full region)
	shards     []*engineShard
	shardBytes uint64 // bytes per shard
	// lockFree enables the zero-lock warm-read fast path (on by default).
	// Reads probe the owning shard's seqlock-protected verified-block cache
	// before touching the shard mutex; see blockcache.go for the protocol
	// and SetLockFreeReads for the diagnostic switch.
	lockFree bool
}

// ShardKeyMaterial derives shard idx's 40-byte key material from the master
// material. One shard passes the master through unchanged, so a 1-shard
// engine is bit-compatible with the monolithic one (including its persisted
// images); with more shards each gets an independent key bound to both the
// shard count and its position.
func ShardKeyMaterial(master []byte, shards, idx int) []byte {
	if shards == 1 {
		return master
	}
	derive := func(salt byte) [sha256.Size]byte {
		h := sha256.New()
		h.Write([]byte("authmem/shard-key/v1\x00"))
		h.Write(master)
		var meta [9]byte
		binary.LittleEndian.PutUint32(meta[0:], uint32(shards))
		binary.LittleEndian.PutUint32(meta[4:], uint32(idx))
		meta[8] = salt
		h.Write(meta[:])
		var out [sha256.Size]byte
		copy(out[:], h.Sum(nil))
		return out
	}
	a, b := derive(0), derive(1)
	key := make([]byte, KeyMaterialLen)
	n := copy(key, a[:])
	copy(key[n:], b[:KeyMaterialLen-n])
	return key
}

// shardConfig returns shard idx's engine configuration.
func shardConfig(cfg Config, shards, idx int) Config {
	sc := cfg
	sc.RegionBytes = cfg.RegionBytes / uint64(shards)
	if !cfg.DisableEncryption {
		sc.KeyMaterial = ShardKeyMaterial(cfg.KeyMaterial, shards, idx)
	}
	return sc
}

// ValidateShards checks that cfg can be split into the given shard count.
func ValidateShards(cfg Config, shards int) error {
	switch {
	case shards < 1:
		return fmt.Errorf("core: shard count %d must be at least 1", shards)
	case shards&(shards-1) != 0:
		return fmt.Errorf("core: shard count %d not a power of two", shards)
	case cfg.RegionBytes%uint64(shards) != 0:
		return fmt.Errorf("core: region %d bytes not divisible into %d shards", cfg.RegionBytes, shards)
	case (cfg.RegionBytes/uint64(shards))%shardGroupBytes != 0:
		return fmt.Errorf("core: shard size %d not a multiple of the %dB block-group", cfg.RegionBytes/uint64(shards), shardGroupBytes)
	// Check the master material before deriving per-shard keys: derivation
	// would turn any length — including an unset key — into valid-looking
	// 40-byte shard keys.
	case !cfg.DisableEncryption && len(cfg.KeyMaterial) != KeyMaterialLen:
		return fmt.Errorf("core: key material must be %d bytes, got %d", KeyMaterialLen, len(cfg.KeyMaterial))
	}
	return shardConfig(cfg, shards, 0).Validate()
}

// NewShardedEngine builds a sharded engine with the given power-of-two
// shard count. Each shard gets a verified-counter cache (Table 1's metadata
// cache budget, per shard).
func NewShardedEngine(cfg Config, shards int) (*ShardedEngine, error) {
	if err := ValidateShards(cfg, shards); err != nil {
		return nil, err
	}
	s := &ShardedEngine{
		cfg:        cfg,
		shards:     make([]*engineShard, shards),
		shardBytes: cfg.RegionBytes / uint64(shards),
		lockFree:   true,
	}
	for i := range s.shards {
		eng, err := NewEngine(shardConfig(cfg, shards, i))
		if err != nil {
			return nil, err
		}
		if err := eng.EnableCounterCache(shardCounterCacheEntries); err != nil {
			return nil, err
		}
		if err := eng.EnableBlockCache(shardBlockCacheEntries); err != nil {
			return nil, err
		}
		if err := enableShardPipeline(eng); err != nil {
			return nil, err
		}
		s.shards[i] = &engineShard{eng: eng, base: uint64(i) * s.shardBytes}
	}
	return s, nil
}

// Config returns the global (whole-region) configuration.
func (s *ShardedEngine) Config() Config { return s.cfg }

// Shards returns the shard count.
func (s *ShardedEngine) Shards() int { return len(s.shards) }

// ShardBytes returns each shard's region size.
func (s *ShardedEngine) ShardBytes() uint64 { return s.shardBytes }

// ShardOf returns the index of the shard owning addr.
func (s *ShardedEngine) ShardOf(addr uint64) int { return int(addr / s.shardBytes) }

// checkAddr validates a global address.
func (s *ShardedEngine) checkAddr(addr uint64) error {
	if addr%BlockBytes != 0 {
		return fmt.Errorf("core: address %#x not %d-byte aligned", addr, BlockBytes)
	}
	if addr >= s.cfg.RegionBytes {
		return fmt.Errorf("core: address %#x outside %d-byte region", addr, s.cfg.RegionBytes)
	}
	return nil
}

// route maps a checked global address to its shard and local address.
func (s *ShardedEngine) route(addr uint64) (*engineShard, uint64) {
	sh := s.shards[addr/s.shardBytes]
	return sh, addr - sh.base
}

// offsetErr rebases shard-local error addresses into the global address
// space. Integrity and quarantine errors carry the failing address; other
// errors pass through (the sharded layer pre-validates addresses, so
// engine-level structural errors cannot carry local addresses).
func offsetErr(err error, base uint64) error {
	if err == nil || base == 0 {
		return err
	}
	var ie *IntegrityError
	if errors.As(err, &ie) {
		cp := *ie
		cp.Addr += base
		return &cp
	}
	var qe *QuarantineError
	if errors.As(err, &qe) {
		cp := *qe
		cp.Addr += base
		return &cp
	}
	return err
}

// Write encrypts and stores one block, locking only the owning shard.
func (s *ShardedEngine) Write(addr uint64, plaintext []byte) error {
	if err := s.checkAddr(addr); err != nil {
		return err
	}
	sh, local := s.route(addr)
	sh.mu.Lock()
	err := sh.eng.Write(local, plaintext)
	sh.mu.Unlock()
	return offsetErr(err, sh.base)
}

// SetLockFreeReads enables or disables the zero-lock warm-read fast path
// (enabled by default). It exists for benchmarking and diagnosis — the
// core-scaling matrix (paperbench -cores) measures the locked baseline by
// turning it off. Call before concurrent traffic starts; it is not
// synchronized against in-flight operations.
func (s *ShardedEngine) SetLockFreeReads(enabled bool) { s.lockFree = enabled }

// LockFreeReads reports whether the warm-read fast path is enabled.
func (s *ShardedEngine) LockFreeReads() bool { return s.lockFree }

// Read verifies and decrypts one block. A warm read — the block resident in
// the owning shard's verified-block cache — is served lock-free via the
// seqlock probe, with zero lock acquisitions and zero allocations; anything
// else locks only the owning shard (counted in Stats().SlowPathReads).
func (s *ShardedEngine) Read(addr uint64, dst []byte) (ReadInfo, error) {
	if err := s.checkAddr(addr); err != nil {
		return ReadInfo{}, err
	}
	sh, local := s.route(addr)
	if s.lockFree && sh.eng.ReadLockFree(local, dst) {
		return ReadInfo{}, nil
	}
	sh.mu.Lock()
	sh.eng.stats.SlowPathReads.Add(1)
	info, err := sh.eng.Read(local, dst)
	sh.mu.Unlock()
	return info, offsetErr(err, sh.base)
}

// ReadRecover reads with the recovery ladder, locking only the owning
// shard. Metadata repair triggered by the ladder stays shard-local. A warm
// cache hit short-circuits the ladder lock-free: trusted plaintext needs no
// recovery, and a quarantined or tampered block is never resident (see
// blockcache.go), so the ladder only ever runs for reads that truly verify.
func (s *ShardedEngine) ReadRecover(addr uint64, dst []byte) (RecoverInfo, error) {
	if err := s.checkAddr(addr); err != nil {
		return RecoverInfo{}, err
	}
	sh, local := s.route(addr)
	if s.lockFree && sh.eng.ReadLockFree(local, dst) {
		return RecoverInfo{}, nil
	}
	sh.mu.Lock()
	sh.eng.stats.SlowPathReads.Add(1)
	info, err := sh.eng.ReadRecover(local, dst)
	sh.mu.Unlock()
	return info, offsetErr(err, sh.base)
}

// segment is one shard-local slice of a multi-block span.
type segment struct {
	sh    *engineShard
	local uint64 // shard-local start address
	off   int    // byte offset into the caller's buffer
	n     int    // byte length
}

// segments splits a checked global span at shard boundaries.
func (s *ShardedEngine) segments(addr uint64, n int) []segment {
	first := addr / s.shardBytes
	last := (addr + uint64(n) - 1) / s.shardBytes
	segs := make([]segment, 0, last-first+1)
	for i := first; i <= last; i++ {
		sh := s.shards[i]
		start := max(addr, sh.base)
		end := min(addr+uint64(n), sh.base+s.shardBytes)
		segs = append(segs, segment{
			sh:    sh,
			local: start - sh.base,
			off:   int(start - addr),
			n:     int(end - start),
		})
	}
	return segs
}

func (s *ShardedEngine) checkSpan(addr uint64, n int, what string) error {
	if err := s.checkAddr(addr); err != nil {
		return err
	}
	if n == 0 || n%BlockBytes != 0 {
		return fmt.Errorf("core: %s length %d not a positive multiple of %d", what, n, BlockBytes)
	}
	if addr+uint64(n) > s.cfg.RegionBytes {
		return fmt.Errorf("core: %s span [%#x, %#x) outside %d-byte region", what, addr, addr+uint64(n), s.cfg.RegionBytes)
	}
	return nil
}

// spanFan runs one operation per shard segment, concurrently when the span
// crosses shards, and returns the lowest-addressed failure. Unlike the
// monolithic batched path, segments in *other* shards may have completed
// after the failing one — span atomicity is per shard, which is the honest
// semantics of independent memory channels.
func (s *ShardedEngine) spanFan(segs []segment, op func(sh *engineShard, local uint64, off, n int) error) error {
	if len(segs) == 1 {
		g := segs[0]
		g.sh.mu.Lock()
		err := op(g.sh, g.local, g.off, g.n)
		g.sh.mu.Unlock()
		return offsetErr(err, g.sh.base)
	}
	errs := make([]error, len(segs))
	var wg sync.WaitGroup
	for i, g := range segs {
		wg.Add(1)
		go func(i int, g segment) {
			defer wg.Done()
			g.sh.mu.Lock()
			err := op(g.sh, g.local, g.off, g.n)
			g.sh.mu.Unlock()
			errs[i] = offsetErr(err, g.sh.base)
		}(i, g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// bankLockFreeSpan publishes a span-read's banked lock-free events to sh.
func bankLockFreeSpan(sh *engineShard, hits, retries uint64) {
	if hits > 0 {
		sh.eng.stats.Reads.Add(hits)
		sh.eng.stats.LockFreeHits.Add(hits)
		sh.eng.bc.hits.Add(hits)
	}
	if retries > 0 {
		sh.eng.stats.SeqlockRetries.Add(retries)
	}
}

// readBlocksLockFree serves the longest prefix of a checked span from the
// per-shard verified-block caches without taking any lock, and returns the
// number of bytes served. Each block served is an individually consistent
// seqlock snapshot — the same per-block linearization the cross-shard
// fan-out already has at segment granularity. Events are banked per shard
// and only for blocks actually served, so the locked path that picks up the
// remainder never double-counts.
func (s *ShardedEngine) readBlocksLockFree(addr uint64, dst []byte) int {
	var (
		served      int
		cur         *engineShard
		hits, tears uint64
	)
	for served < len(dst) {
		sh, local := s.route(addr + uint64(served))
		if sh != cur {
			if cur != nil {
				bankLockFreeSpan(cur, hits, tears)
			}
			cur, hits, tears = sh, 0, 0
			if sh.eng.bc == nil {
				break
			}
		}
		hit, r := sh.eng.bc.probe(local/BlockBytes, dst[served:served+BlockBytes])
		tears += uint64(r)
		if !hit {
			break
		}
		hits++
		served += BlockBytes
	}
	if cur != nil {
		bankLockFreeSpan(cur, hits, tears)
	}
	return served
}

// ReadBlocks verifies and decrypts a contiguous span, fanning shard
// segments out concurrently. The returned error is the lowest-addressed
// failure; see spanFan for cross-shard atomicity semantics. A warm prefix
// of the span is served lock-free block by block; only the cold remainder
// takes shard locks.
func (s *ShardedEngine) ReadBlocks(addr uint64, dst []byte) error {
	if err := s.checkSpan(addr, len(dst), "read"); err != nil {
		return err
	}
	if s.lockFree {
		served := s.readBlocksLockFree(addr, dst)
		if served == len(dst) {
			return nil
		}
		addr += uint64(served)
		dst = dst[served:]
	}
	return s.spanFan(s.segments(addr, len(dst)), func(sh *engineShard, local uint64, off, n int) error {
		sh.eng.stats.SlowPathReads.Add(uint64(n / BlockBytes))
		return sh.eng.ReadBlocks(local, dst[off:off+n])
	})
}

// WriteBlocks encrypts and stores a contiguous span, fanning shard segments
// out concurrently.
func (s *ShardedEngine) WriteBlocks(addr uint64, src []byte) error {
	if err := s.checkSpan(addr, len(src), "write"); err != nil {
		return err
	}
	return s.spanFan(s.segments(addr, len(src)), func(sh *engineShard, local uint64, off, n int) error {
		return sh.eng.WriteBlocks(local, src[off:off+n])
	})
}

// Stats merges per-shard counters on read. Every engine counter is atomic,
// so the merge takes no locks and never contends with the read path —
// observation costs the observer, not the traffic. The snapshot is not a
// single linearization point across shards (counters advance while it is
// taken), which is the standard contract for live performance counters.
func (s *ShardedEngine) Stats() EngineStats {
	var total EngineStats
	for _, sh := range s.shards {
		total.Add(sh.eng.Stats())
	}
	return total
}

// SchemeStats merges per-shard counter-scheme events.
func (s *ShardedEngine) SchemeStats() ctr.Stats {
	var total ctr.Stats
	for _, sh := range s.shards {
		sh.mu.Lock()
		st := sh.eng.SchemeStats()
		sh.mu.Unlock()
		total.Writes += st.Writes
		total.Resets += st.Resets
		total.Reencodes += st.Reencodes
		total.Extensions += st.Extensions
		total.Reencryptions += st.Reencryptions
		total.ReencryptedBlocks += st.ReencryptedBlocks
	}
	return total
}

// SetRecoveryPolicy applies the policy to every shard.
func (s *ShardedEngine) SetRecoveryPolicy(p RecoveryPolicy) {
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.eng.SetRecoveryPolicy(p)
		sh.mu.Unlock()
	}
}

// RecoveryPolicy reports the policy in force (identical across shards).
func (s *ShardedEngine) RecoveryPolicy() RecoveryPolicy {
	sh := s.shards[0]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.eng.RecoveryPolicy()
}

// SetRetryHook registers f, invoked with global block indices.
func (s *ShardedEngine) SetRetryHook(f func(blk uint64)) {
	for _, sh := range s.shards {
		base := sh.base / BlockBytes
		sh.mu.Lock()
		if f == nil {
			sh.eng.SetRetryHook(nil)
		} else {
			sh.eng.SetRetryHook(func(blk uint64) { f(base + blk) })
		}
		sh.mu.Unlock()
	}
}

// Quarantined reports whether the block at addr is quarantined.
func (s *ShardedEngine) Quarantined(addr uint64) bool {
	if s.checkAddr(addr) != nil {
		return false
	}
	sh, local := s.route(addr)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.eng.Quarantined(local)
}

// QuarantineCount returns the total quarantined blocks without allocating.
func (s *ShardedEngine) QuarantineCount() int {
	total := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		total += sh.eng.QuarantineCount()
		sh.mu.Unlock()
	}
	return total
}

// QuarantineList returns global quarantined block indices in ascending
// order, or nil (no allocation) when the quarantine is empty.
func (s *ShardedEngine) QuarantineList() []uint64 {
	var out []uint64
	for _, sh := range s.shards {
		sh.mu.Lock()
		local := sh.eng.QuarantineList()
		base := sh.base / BlockBytes
		if len(local) > 0 {
			if out == nil {
				out = make([]uint64, 0, len(local))
			}
			for _, blk := range local {
				out = append(out, base+blk) // shard order == ascending global order
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// Scrub runs one patrol-scrub pass shard by shard.
func (s *ShardedEngine) Scrub() (ScrubReport, error) {
	var total ScrubReport
	for _, sh := range s.shards {
		sh.mu.Lock()
		r, err := sh.eng.Scrub()
		sh.mu.Unlock()
		if err != nil {
			return total, err
		}
		total.BlocksScanned += r.BlocksScanned
		total.ParityFlagged += r.ParityFlagged
		total.Corrected += r.Corrected
		total.Uncorrectable += r.Uncorrectable
	}
	return total, nil
}

// ParallelScrub scrubs all shards concurrently — the shard fan-out is the
// parallelism, so the workers argument of the monolithic engine is not
// needed here and each shard's pass stays serial under its own lock.
func (s *ShardedEngine) ParallelScrub() (ScrubReport, error) {
	reports := make([]ScrubReport, len(s.shards))
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh *engineShard) {
			defer wg.Done()
			sh.mu.Lock()
			reports[i], errs[i] = sh.eng.Scrub()
			sh.mu.Unlock()
		}(i, sh)
	}
	wg.Wait()
	var total ScrubReport
	for i := range reports {
		if errs[i] != nil {
			return total, errs[i]
		}
		total.BlocksScanned += reports[i].BlocksScanned
		total.ParityFlagged += reports[i].ParityFlagged
		total.Corrected += reports[i].Corrected
		total.Uncorrectable += reports[i].Uncorrectable
	}
	return total, nil
}

// WithShard locks shard i and passes its engine to fn — the sharded
// analogue of SyncMemory.Locked, used by attack experiments and the fault
// campaign to reach a shard's tamper surface without racing traffic.
func (s *ShardedEngine) WithShard(i int, fn func(eng *Engine)) {
	sh := s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	fn(sh.eng)
}

// TamperCiphertext flips a stored ciphertext bit (global address).
func (s *ShardedEngine) TamperCiphertext(addr uint64, bit int) error {
	if err := s.checkAddr(addr); err != nil {
		return err
	}
	sh, local := s.route(addr)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.eng.TamperCiphertext(local, bit)
}

// TamperECCLane flips an ECC-lane bit (global address, MACInECC only).
func (s *ShardedEngine) TamperECCLane(addr uint64, bit int) error {
	if err := s.checkAddr(addr); err != nil {
		return err
	}
	sh, local := s.route(addr)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.eng.TamperECCLane(local, bit)
}

// TamperInlineTag flips a stored MAC-tag bit (global address, MACInline).
func (s *ShardedEngine) TamperInlineTag(addr uint64, bit int) error {
	if err := s.checkAddr(addr); err != nil {
		return err
	}
	sh, local := s.route(addr)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.eng.TamperInlineTag(local, bit)
}

// TamperCheckBit flips a stored codec check-byte bit (global address,
// MACInline only).
func (s *ShardedEngine) TamperCheckBit(addr uint64, bit int) error {
	if err := s.checkAddr(addr); err != nil {
		return err
	}
	sh, local := s.route(addr)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.eng.TamperCheckBit(local, bit)
}

// TamperCounterForAddr flips one bit of the counter block covering the
// global address addr.
func (s *ShardedEngine) TamperCounterForAddr(addr uint64, bit int) error {
	if err := s.checkAddr(addr); err != nil {
		return err
	}
	sh, local := s.route(addr)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.eng.TamperCounterBlock(sh.eng.MetadataIndex(local), bit)
}

// FlushAll forces every shard's deferred Merkle maintenance to land.
// Shards flush concurrently — each flush touches only that shard's own
// counter images and subtree, under its own lock — so the epoch barrier
// costs one shard's flush, not the sum. Engine-level flush hooks (persist,
// root export, scrub) fire per shard automatically; FlushAll is for callers
// that want a region-wide quiescent point on demand.
func (s *ShardedEngine) FlushAll() error {
	// Quiescent fast path: each shard's write pipe keeps an atomic dirty
	// gauge, so an already-flushed region answers without locks, goroutines,
	// or allocations — FlushAll in a read-mostly loop costs a few loads.
	dirty := false
	for _, sh := range s.shards {
		if sh.eng.flushPending() {
			dirty = true
			break
		}
	}
	if !dirty {
		return nil
	}
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh *engineShard) {
			defer wg.Done()
			sh.mu.Lock()
			defer sh.mu.Unlock()
			errs[i] = sh.eng.Flush()
		}(i, sh)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// RootDigest returns the combining layer's trusted digest over all shard
// subtree roots. All shards are locked for a consistent snapshot.
func (s *ShardedEngine) RootDigest() RootDigest {
	roots := make([][sha256.Size]byte, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.Lock()
		roots[i] = sh.eng.RootDigest()
		sh.mu.Unlock()
	}
	return tree.CombineRoots(roots)
}
