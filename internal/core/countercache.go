package core

import "authmem/internal/ctr"

// Verified-counter cache: the functional analogue of the paper's Table 1
// on-chip metadata cache (32KB, 8-way in the timing model).
//
// A counter block whose image has passed its integrity-tree walk is trusted
// until evicted — that is the Bonsai Merkle tree contract: the tree
// authenticates what crosses the trust boundary, and anything already inside
// (SRAM) needs no re-verification. The seed engine re-walked the tree on
// every read; with this cache, a read whose counter block is resident skips
// the walk entirely and pays only MAC verification and decryption.
//
// Entries hold a private copy of the verified image, so later tampering with
// the DRAM copy cannot retroactively corrupt the cached one. Decoded
// counters are memoized per slot (in hardware the decode is combinational
// logic; the memo models its zero marginal cost).
//
// Consistency points, all internal to the engine:
//   - commitMetadata refreshes the cached copy (write-back cache behaviour);
//   - the write pipeline's deferCommit/Flush refresh it the same way — the
//     image they install always comes from the trusted scheme state
//     machine, so a resident line stays trusted even while its tree leaf
//     is dirty (the tree only vouches for what crosses the boundary; a
//     cached line never left);
//   - repairMetadata and tamper APIs flush — injected faults land in DRAM,
//     and the campaign's job is to exercise the detection path a cold
//     metadata cache would take, not to mask faults behind a warm one;
//   - a resumed engine starts cold.
//
// The cache is off by default (nil); ShardedEngine enables one per shard,
// which is the architectural point: private metadata caches scale linearly
// with shard count, exactly like per-core caches.

// counterCacheEntry is one direct-mapped cache line.
type counterCacheEntry struct {
	midx    uint64 // +1; 0 means empty
	decoded uint64 // bitmap: counters[i] holds slot i's decoded counter
	img     [BlockBytes]byte
	// counters memoizes per-slot decodes of img. GroupBlocks covers every
	// scheme (monolithic packs only ctr.CountersPerMetadataBlock slots).
	counters [ctr.GroupBlocks]uint64
}

// counterCache is a direct-mapped cache of tree-verified counter images.
type counterCache struct {
	entries []counterCacheEntry
	mask    uint64
	hits    uint64
	misses  uint64
}

// newCounterCache builds a cache with the given power-of-two entry count.
func newCounterCache(entries int) *counterCache {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil
	}
	return &counterCache{
		entries: make([]counterCacheEntry, entries),
		mask:    uint64(entries - 1),
	}
}

// lookup returns the entry holding midx, or nil on miss. The hit/miss
// counters feed EngineStats.
func (c *counterCache) lookup(midx uint64) *counterCacheEntry {
	e := &c.entries[midx&c.mask]
	if e.midx == midx+1 {
		c.hits++
		return e
	}
	c.misses++
	return nil
}

// insert installs a copy of the just-verified image for midx, displacing
// whatever shared its slot.
func (c *counterCache) insert(midx uint64, img []byte) {
	e := &c.entries[midx&c.mask]
	e.midx = midx + 1
	e.decoded = 0
	copy(e.img[:], img)
}

// update refreshes midx's cached copy if resident (write-back on commit).
// Non-resident blocks are not allocated: a write stream that never re-reads
// must not evict the read working set.
func (c *counterCache) update(midx uint64, img []byte) {
	e := &c.entries[midx&c.mask]
	if e.midx != midx+1 {
		return
	}
	e.decoded = 0
	copy(e.img[:], img)
}

// evict drops midx if resident.
func (c *counterCache) evict(midx uint64) {
	e := &c.entries[midx&c.mask]
	if e.midx == midx+1 {
		e.midx = 0
		e.decoded = 0
	}
}

// flush empties the cache.
func (c *counterCache) flush() {
	for i := range c.entries {
		c.entries[i].midx = 0
		c.entries[i].decoded = 0
	}
}

// counter returns the decoded counter for slot, memoizing the decode.
func (e *counterCacheEntry) counter(eng *Engine, blk uint64) (uint64, error) {
	slot := eng.counterSlot(blk)
	if e.decoded>>slot&1 == 1 {
		return e.counters[slot], nil
	}
	v, err := eng.decodeCounter(e.img[:], blk)
	if err != nil {
		return 0, err
	}
	e.counters[slot] = v
	e.decoded |= 1 << slot
	return v, nil
}
