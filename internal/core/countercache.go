package core

import (
	"sync/atomic"

	"authmem/internal/ctr"
)

// Verified-counter cache: the functional analogue of the paper's Table 1
// on-chip metadata cache (32KB, 8-way in the timing model).
//
// A counter block whose image has passed its integrity-tree walk is trusted
// until evicted — that is the Bonsai Merkle tree contract: the tree
// authenticates what crosses the trust boundary, and anything already inside
// (SRAM) needs no re-verification. The seed engine re-walked the tree on
// every read; with this cache, a read whose counter block is resident skips
// the walk entirely and pays only MAC verification and decryption.
//
// Entries hold a private copy of the verified image, so later tampering with
// the DRAM copy cannot retroactively corrupt the cached one. Decoded
// counters are memoized per slot (in hardware the decode is combinational
// logic; the memo models its zero marginal cost).
//
// Concurrency: entries carry the same epoch-versioned seqlock protocol as
// the verified-block cache (blockcache.go) — an atomic generation counter
// bumped odd/even around every mutation, an atomic tag, and an install-time
// epoch stamp so whole-cache invalidation is an O(1) epoch bump. Unlike the
// block cache, counter-cache hits stay under the shard lock: a metadata hit
// only removes the tree walk, and everything after it (MAC verification,
// keystream decryption, correction write-backs, the decode memo below)
// mutates engine state the lock protects. The payload and memo are therefore
// plain fields, accessed only with the lock held; the generation/epoch words
// exist so evictions and flushes publish through one protocol across both
// caches — the trust-boundary argument in DESIGN.md §6d covers them
// together — and so the hit/miss counters can be snapshotted lock-free.
//
// Consistency points, all internal to the engine:
//   - commitMetadata refreshes the cached copy (write-back cache behaviour);
//   - the write pipeline's deferCommit/Flush refresh it the same way — the
//     image they install always comes from the trusted scheme state
//     machine, so a resident line stays trusted even while its tree leaf
//     is dirty (the tree only vouches for what crosses the boundary; a
//     cached line never left);
//   - repairMetadata and tamper APIs flush — injected faults land in DRAM,
//     and the campaign's job is to exercise the detection path a cold
//     metadata cache would take, not to mask faults behind a warm one;
//   - a resumed engine starts cold.
//
// The cache is off by default (nil); ShardedEngine enables one per shard,
// which is the architectural point: private metadata caches scale linearly
// with shard count, exactly like per-core caches.

// counterCacheEntry is one direct-mapped cache line.
type counterCacheEntry struct {
	// gen/tag/epoch follow the blockCacheEntry seqlock protocol; tag is the
	// metadata block index +1 (0 means empty).
	gen   atomic.Uint64
	tag   atomic.Uint64
	epoch atomic.Uint64

	// The payload below is guarded by the owning shard's lock (see the file
	// comment); the generation protocol brackets its mutations so the line's
	// validity is still decided by atomic words alone.
	decoded uint64 // bitmap: counters[i] holds slot i's decoded counter
	img     [BlockBytes]byte
	// counters memoizes per-slot decodes of img. GroupBlocks covers every
	// scheme (monolithic packs only ctr.CountersPerMetadataBlock slots).
	counters [ctr.GroupBlocks]uint64
}

// counterCache is a direct-mapped cache of tree-verified counter images.
type counterCache struct {
	entries []counterCacheEntry
	mask    uint64
	epoch   atomic.Uint64
	hits    atomic.Uint64
	misses  atomic.Uint64
}

// newCounterCache builds a cache with the given power-of-two entry count.
func newCounterCache(entries int) *counterCache {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil
	}
	return &counterCache{
		entries: make([]counterCacheEntry, entries),
		mask:    uint64(entries - 1),
	}
}

// resident reports whether e currently holds midx under cache epoch.
func (c *counterCache) resident(e *counterCacheEntry, midx uint64) bool {
	return e.tag.Load() == midx+1 && e.epoch.Load() == c.epoch.Load()
}

// lookup returns the entry holding midx, or nil on miss. Caller holds the
// owning lock. The hit/miss counters feed EngineStats.
func (c *counterCache) lookup(midx uint64) *counterCacheEntry {
	e := &c.entries[midx&c.mask]
	if c.resident(e, midx) {
		c.hits.Add(1)
		return e
	}
	c.misses.Add(1)
	return nil
}

// insert installs a copy of the just-verified image for midx, displacing
// whatever shared its slot. Caller holds the owning lock.
func (c *counterCache) insert(midx uint64, img []byte) {
	e := &c.entries[midx&c.mask]
	e.gen.Add(1)
	e.tag.Store(midx + 1)
	e.epoch.Store(c.epoch.Load())
	e.decoded = 0
	copy(e.img[:], img)
	e.gen.Add(1)
}

// update refreshes midx's cached copy if resident (write-back on commit).
// Non-resident blocks are not allocated: a write stream that never re-reads
// must not evict the read working set.
func (c *counterCache) update(midx uint64, img []byte) {
	e := &c.entries[midx&c.mask]
	if !c.resident(e, midx) {
		return
	}
	e.gen.Add(1)
	e.decoded = 0
	copy(e.img[:], img)
	e.gen.Add(1)
}

// evict drops midx if resident. Caller holds the owning lock.
func (c *counterCache) evict(midx uint64) {
	e := &c.entries[midx&c.mask]
	if !c.resident(e, midx) {
		return
	}
	e.gen.Add(1)
	e.tag.Store(0)
	e.decoded = 0
	e.gen.Add(1)
}

// flush empties the cache in O(1) by advancing the epoch (see
// blockCache.flush for the linearization argument).
func (c *counterCache) flush() {
	c.epoch.Add(1)
}

// counter returns the decoded counter for slot, memoizing the decode.
// Caller holds the owning lock.
func (e *counterCacheEntry) counter(eng *Engine, blk uint64) (uint64, error) {
	slot := eng.counterSlot(blk)
	if e.decoded>>slot&1 == 1 {
		return e.counters[slot], nil
	}
	v, err := eng.decodeCounter(e.img[:], blk)
	if err != nil {
		return 0, err
	}
	e.counters[slot] = v
	e.decoded |= 1 << slot
	return v, nil
}
