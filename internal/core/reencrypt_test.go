package core

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"authmem/internal/ctr"
)

// hammer drives enough hot writes through e to force at least one group
// re-encryption sweep.
func hammer(t *testing.T, e *Engine, addr uint64, writes int) {
	t.Helper()
	d := block(900)
	for i := 0; i < writes; i++ {
		if err := e.Write(addr, d); err != nil {
			t.Fatal(err)
		}
	}
	if e.SchemeStats().Reencryptions == 0 {
		t.Fatal("hot writes forced no re-encryption")
	}
}

// TestParallelReencryptMatchesSerial drives identical traffic — neighbor
// writes, then a hot block forcing overflow sweeps — through a serial and a
// parallel engine at every grouped design point. The sweeps must leave
// bit-identical persisted state.
func TestParallelReencryptMatchesSerial(t *testing.T) {
	for _, scheme := range []ctr.Kind{ctr.Split, ctr.Delta, ctr.DualLength} {
		for _, placement := range []MACPlacement{MACInline, MACInECC} {
			cfg := smallCfg(scheme, placement)
			serial := newEngine(t, cfg)
			par := newEngine(t, cfg)
			if err := par.EnableParallelReencrypt(4); err != nil {
				t.Fatal(err)
			}
			if par.ReencryptWorkers() != 4 {
				t.Fatal("worker count not registered")
			}
			for _, e := range []*Engine{serial, par} {
				for i := uint64(1); i < 40; i++ {
					if err := e.Write(i*BlockBytes, block(int64(i))); err != nil {
						t.Fatal(err)
					}
				}
				hammer(t, e, 0, 1500)
			}
			if par.Stats().ParallelReencryptWorkers == 0 {
				t.Fatalf("%s/%s: parallel sweep never dispatched", scheme, placement)
			}
			if serial.Stats().ParallelReencryptWorkers != 0 {
				t.Fatal("serial engine reported parallel workers")
			}
			var a, b bytes.Buffer
			ra, err := serial.Persist(&a)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := par.Persist(&b)
			if err != nil {
				t.Fatal(err)
			}
			if ra != rb || !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Fatalf("%s/%s: parallel sweep state diverges from serial", scheme, placement)
			}
		}
	}
}

// TestParallelReencryptQuarantines plants an unverifiable block in the
// group, then forces a sweep: the parallel path must refuse to re-seal it
// (no laundering) and quarantine it, exactly like the serial sweep.
func TestParallelReencryptQuarantines(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInline)
	e := newEngine(t, cfg)
	if err := e.EnableParallelReencrypt(4); err != nil {
		t.Fatal(err)
	}
	victim := uint64(20) * BlockBytes
	if err := e.Write(victim, block(7)); err != nil {
		t.Fatal(err)
	}
	// A burst beyond any correction budget — clustered in one SECDED word
	// so per-word correction cannot absorb it: the block can never verify.
	for _, bit := range []int{3, 5, 9, 12, 17} {
		if err := e.TamperCiphertext(victim, bit); err != nil {
			t.Fatal(err)
		}
	}
	hammer(t, e, 0, 1500)
	if e.Stats().ParallelReencryptWorkers == 0 {
		t.Fatal("parallel sweep never dispatched")
	}
	if !e.Quarantined(victim) {
		t.Fatal("unverifiable block survived the sweep unquarantined")
	}
	dst := make([]byte, BlockBytes)
	_, err := e.Read(victim, dst)
	var qe *QuarantineError
	if !errors.As(err, &qe) {
		t.Fatalf("read of quarantined block returned %v, want QuarantineError", err)
	}
	// Software rewrites the block; the quarantine releases.
	if err := e.Write(victim, block(8)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Read(victim, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, block(8)) {
		t.Fatal("rewritten block corrupted")
	}
}

// TestParallelReencryptMidSpanWrite covers the in-flight-write interaction:
// a WriteBlocks span whose counter touches overflow mid-chunk must leave the
// pending blocks to the incoming data, not the sweep.
func TestParallelReencryptMidSpanWrite(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInECC)
	e := newEngine(t, cfg)
	if err := e.EnableParallelReencrypt(4); err != nil {
		t.Fatal(err)
	}
	// Drive the group's counters near overflow with single writes, then
	// land a span over the whole group so the overflow fires mid-span.
	for i := 0; i < 1500; i++ {
		if err := e.Write(0, block(1)); err != nil {
			t.Fatal(err)
		}
	}
	span := make([]byte, ctr.GroupBlocks*BlockBytes)
	for i := range span {
		span[i] = byte(i * 31)
	}
	if err := e.WriteBlocks(0, span); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(span))
	if err := e.ReadBlocks(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, span) {
		t.Fatal("span data corrupted across a mid-span sweep")
	}
}

func TestEnableParallelReencryptValidation(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInECC)
	cfg.DataTree = true
	e := newEngine(t, cfg)
	if err := e.EnableParallelReencrypt(4); err == nil {
		t.Fatal("classic data tree must reject the parallel sweep")
	}
	e2 := newEngine(t, smallCfg(ctr.Delta, MACInECC))
	if err := e2.EnableParallelReencrypt(4); err != nil {
		t.Fatal(err)
	}
	if err := e2.EnableParallelReencrypt(1); err != nil { // back to serial
		t.Fatal(err)
	}
	if e2.ReencryptWorkers() != 0 {
		t.Fatal("workers < 2 must disable the fan-out")
	}
	if err := e2.EnableParallelReencrypt(-1); err == nil {
		t.Fatal("negative worker count must be rejected")
	}
}

// TestConcurrentShardedReencrypt hammers every shard from its own goroutine
// so overflow sweeps (parallel by default in the sharded engine) run under
// the race detector against concurrent traffic in other shards.
func TestConcurrentShardedReencrypt(t *testing.T) {
	cfg := smallCfg(ctr.Split, MACInECC) // split overflows fastest
	s, err := NewShardedEngine(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	shardBytes := s.ShardBytes()
	var wg sync.WaitGroup
	errs := make([]error, s.Shards())
	for i := 0; i < s.Shards(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			base := uint64(i) * shardBytes
			d := block(int64(i))
			for j := uint64(1); j < 30; j++ {
				if err := s.Write(base+j*BlockBytes, block(int64(i)*100+int64(j))); err != nil {
					errs[i] = err
					return
				}
			}
			for k := 0; k < 400; k++ {
				if err := s.Write(base, d); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("shard %d worker: %v", i, err)
		}
	}
	if s.SchemeStats().Reencryptions == 0 {
		t.Fatal("no sweeps under concurrent traffic")
	}
	if s.Stats().ParallelReencryptWorkers == 0 {
		t.Fatal("sharded sweeps should use the parallel pool by default")
	}
	dst := make([]byte, BlockBytes)
	for i := 0; i < s.Shards(); i++ {
		base := uint64(i) * shardBytes
		for j := uint64(1); j < 30; j++ {
			if _, err := s.Read(base+j*BlockBytes, dst); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(dst, block(int64(i)*100+int64(j))) {
				t.Fatalf("shard %d block %d corrupted by concurrent sweeps", i, j)
			}
		}
	}
}
