package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"authmem/internal/ctr"
)

// TestWriteBlocksMatchesWrite drives one engine through per-block Write and
// a twin through WriteBlocks with identical data, across every scheme ×
// placement point, and requires identical DRAM state: ciphertext, metadata
// lanes, check bytes, counter images, and scheme stats.
func TestWriteBlocksMatchesWrite(t *testing.T) {
	for _, cfg := range allDesignPoints() {
		one := newEngine(t, cfg)
		two := newEngine(t, cfg)
		rng := rand.New(rand.NewSource(99))

		// Several sweeps over one region rewrite the same blocks, so
		// grouped schemes exercise resets and re-encryptions through
		// the batched path too.
		const spanBlocks = 3 * ctr.GroupBlocks
		buf := make([]byte, spanBlocks*BlockBytes)
		for sweep := 0; sweep < 4; sweep++ {
			rng.Read(buf)
			base := uint64(sweep%2) * ctr.GroupBlocks * BlockBytes
			for j := 0; j < spanBlocks; j++ {
				if err := one.Write(base+uint64(j)*BlockBytes, buf[j*BlockBytes:(j+1)*BlockBytes]); err != nil {
					t.Fatal(err)
				}
			}
			if err := two.WriteBlocks(base, buf); err != nil {
				t.Fatal(err)
			}
		}

		if one.SchemeStats() != two.SchemeStats() {
			t.Fatalf("%s/%s: scheme stats diverge: %+v vs %+v",
				cfg.Scheme, cfg.Placement, one.SchemeStats(), two.SchemeStats())
		}
		if one.store.Len() != two.store.Len() {
			t.Fatalf("%s/%s: resident %d vs %d", cfg.Scheme, cfg.Placement, one.store.Len(), two.store.Len())
		}
		one.store.forEach(func(blk uint64, ct []byte, meta *uint64, check []byte) {
			ct2 := two.store.Ciphertext(blk)
			if !bytes.Equal(ct, ct2) {
				t.Fatalf("%s/%s: block %d ciphertext diverges", cfg.Scheme, cfg.Placement, blk)
			}
			if *meta != two.store.Meta(blk) {
				t.Fatalf("%s/%s: block %d metadata diverges", cfg.Scheme, cfg.Placement, blk)
			}
			if check != nil && !bytes.Equal(check, two.store.Check(blk)) {
				t.Fatalf("%s/%s: block %d check bytes diverge", cfg.Scheme, cfg.Placement, blk)
			}
		})
		one.images.forEach(func(midx uint64, img []byte) {
			if !bytes.Equal(img, two.images.Load(midx)) {
				t.Fatalf("%s/%s: counter image %d diverges", cfg.Scheme, cfg.Placement, midx)
			}
		})
	}
}

// TestReadBlocksMatchesRead writes a span, then requires ReadBlocks to
// return exactly what per-block Read does — including over a leading run of
// never-written (fresh, zero) blocks.
func TestReadBlocksMatchesRead(t *testing.T) {
	for _, cfg := range allDesignPoints() {
		e := newEngine(t, cfg)
		rng := rand.New(rand.NewSource(7))

		const spanBlocks = 2*ctr.GroupBlocks + 5
		// Leave the first half-group fresh.
		const firstWritten = ctr.GroupBlocks / 2
		want := make([]byte, spanBlocks*BlockBytes)
		for j := firstWritten; j < spanBlocks; j++ {
			pt := want[j*BlockBytes : (j+1)*BlockBytes]
			rng.Read(pt)
			if err := e.Write(uint64(j)*BlockBytes, pt); err != nil {
				t.Fatal(err)
			}
		}

		got := make([]byte, spanBlocks*BlockBytes)
		if err := e.ReadBlocks(0, got); err != nil {
			t.Fatalf("%s/%s: %v", cfg.Scheme, cfg.Placement, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s/%s: batched read diverges from written data", cfg.Scheme, cfg.Placement)
		}

		single := make([]byte, BlockBytes)
		for j := 0; j < spanBlocks; j++ {
			if _, err := e.Read(uint64(j)*BlockBytes, single); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(single, got[j*BlockBytes:(j+1)*BlockBytes]) {
				t.Fatalf("%s/%s: block %d: Read and ReadBlocks disagree", cfg.Scheme, cfg.Placement, j)
			}
		}
	}
}

// TestReadBlocksDetectsTamper: a flipped ciphertext bit inside the span
// must fail the batch with an *IntegrityError.
func TestReadBlocksDetectsTamper(t *testing.T) {
	e := newEngine(t, smallCfg(ctr.Delta, MACInECC))
	buf := make([]byte, 8*BlockBytes)
	rand.New(rand.NewSource(3)).Read(buf)
	if err := e.WriteBlocks(0, buf); err != nil {
		t.Fatal(err)
	}
	// Three flipped bits exceed the 2-bit correction budget.
	for bit := 0; bit < 3; bit++ {
		if err := e.TamperCiphertext(5*BlockBytes, bit*100); err != nil {
			t.Fatal(err)
		}
	}
	dst := make([]byte, len(buf))
	var ie *IntegrityError
	if err := e.ReadBlocks(0, dst); !errors.As(err, &ie) {
		t.Fatalf("tampered span read: %v", err)
	}
}

// TestBatchSpanChecks pins the argument validation of both batch calls.
func TestBatchSpanChecks(t *testing.T) {
	e := newEngine(t, smallCfg(ctr.Delta, MACInECC))
	buf := make([]byte, 2*BlockBytes)
	if err := e.WriteBlocks(1, buf); err == nil {
		t.Fatal("unaligned batched write accepted")
	}
	if err := e.WriteBlocks(0, buf[:70]); err == nil {
		t.Fatal("non-multiple batched write accepted")
	}
	if err := e.WriteBlocks(0, nil); err == nil {
		t.Fatal("empty batched write accepted")
	}
	if err := e.WriteBlocks(e.cfg.RegionBytes-BlockBytes, buf); err == nil {
		t.Fatal("batched write past region end accepted")
	}
	if err := e.ReadBlocks(1, buf); err == nil {
		t.Fatal("unaligned batched read accepted")
	}
	if err := e.ReadBlocks(e.cfg.RegionBytes-BlockBytes, buf); err == nil {
		t.Fatal("batched read past region end accepted")
	}
}

// TestParallelScrubMatchesScrub injects the same fault pattern into twin
// engines and requires ParallelScrub to report and repair exactly what the
// serial Scrub does, for several worker counts.
func TestParallelScrubMatchesScrub(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7} {
		serial := newEngine(t, smallCfg(ctr.Delta, MACInECC))
		parallel := newEngine(t, smallCfg(ctr.Delta, MACInECC))
		for _, e := range []*Engine{serial, parallel} {
			for i := uint64(0); i < 200; i++ {
				if err := e.Write(i*BlockBytes, block(int64(i))); err != nil {
					t.Fatal(err)
				}
			}
			// Odd-weight faults the parity screen can see: a data bit
			// here, an ECC-lane bit there.
			for i := uint64(0); i < 200; i += 17 {
				if err := e.TamperCiphertext(i*BlockBytes, int(i)%512); err != nil {
					t.Fatal(err)
				}
			}
			for i := uint64(5); i < 200; i += 29 {
				if err := e.TamperECCLane(i*BlockBytes, int(i)%64); err != nil {
					t.Fatal(err)
				}
			}
		}

		want, err := serial.Scrub()
		if err != nil {
			t.Fatal(err)
		}
		got, err := parallel.ParallelScrub(workers)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("workers=%d: ParallelScrub %+v, Scrub %+v", workers, got, want)
		}
		if want.ParityFlagged == 0 || want.Corrected == 0 {
			t.Fatalf("fault pattern not exercised: %+v", want)
		}

		// Both engines must now read back clean and identically.
		a := make([]byte, 200*BlockBytes)
		b := make([]byte, 200*BlockBytes)
		if err := serial.ReadBlocks(0, a); err != nil {
			t.Fatal(err)
		}
		if err := parallel.ReadBlocks(0, b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatal("post-scrub contents diverge")
		}
	}
}

// TestParallelScrubRequiresMACInECC mirrors the serial guard.
func TestParallelScrubRequiresMACInECC(t *testing.T) {
	e := newEngine(t, smallCfg(ctr.Delta, MACInline))
	if _, err := e.ParallelScrub(0); err == nil {
		t.Fatal("ParallelScrub accepted MACInline")
	}
}

// TestBlockStoreBasics pins the arena semantics the engine depends on:
// presence, stable slices, ascending iteration, and the shared zero image.
func TestBlockStoreBasics(t *testing.T) {
	s := newBlockStore(3*chunkBlocks, 8)
	if s.Len() != 0 || s.Present(0) || s.Ciphertext(0) != nil {
		t.Fatal("fresh store not empty")
	}
	// Touch blocks across chunk boundaries, out of order.
	idx := []uint64{2*chunkBlocks + 7, 1, chunkBlocks - 1, chunkBlocks, 1} // one duplicate
	for _, blk := range idx {
		ct := s.Materialize(blk)
		ct[0] = byte(blk)
		s.SetMeta(blk, blk*3+1)
		s.Check(blk)[0] = byte(blk + 1)
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	var order []uint64
	s.forEach(func(blk uint64, ct []byte, meta *uint64, check []byte) {
		order = append(order, blk)
		if ct[0] != byte(blk) || *meta != blk*3+1 || check[0] != byte(blk+1) {
			t.Fatalf("block %d state lost", blk)
		}
	})
	want := []uint64{1, chunkBlocks - 1, chunkBlocks, 2*chunkBlocks + 7}
	for i, blk := range want {
		if order[i] != blk {
			t.Fatalf("iteration order %v, want %v", order, want)
		}
	}

	im := newImageStore(2 * chunkBlocks)
	if im.Present(5) {
		t.Fatal("fresh image store not empty")
	}
	if img := im.Load(5); !bytes.Equal(img, make([]byte, BlockBytes)) {
		t.Fatal("absent image must read as zeros")
	}
	copy(im.Store(5), []byte{9, 9, 9})
	if img := im.Load(5); img[0] != 9 {
		t.Fatal("stored image lost")
	}
	if img := im.Load(chunkBlocks + 5); img[0] != 0 {
		t.Fatal("shared zero image was mutated")
	}
}
