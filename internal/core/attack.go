package core

import (
	"fmt"

	"authmem/internal/macecc"
	"authmem/internal/tree"
)

// This file is the adversary's (and the fault injector's) interface to the
// engine: every byte an attacker with physical DRAM access could touch is
// reachable here, and nothing inside the trust boundary is.

// TamperCiphertext flips one bit of a stored ciphertext block. It models
// both a bus/cold-boot attack and a DRAM fault, which are indistinguishable
// to the controller.
func (e *Engine) TamperCiphertext(addr uint64, bit int) error {
	blk, err := e.attackBlock(addr)
	if err != nil {
		return err
	}
	if bit < 0 || bit >= BlockBytes*8 {
		return fmt.Errorf("core: bit %d out of range", bit)
	}
	ct, ok := e.data[blk]
	if !ok {
		return fmt.Errorf("core: block %#x not resident", addr)
	}
	ct[bit/8] ^= 1 << uint(bit%8)
	return nil
}

// TamperECCLane flips one of the 64 ECC-lane bits of a block (MAC-in-ECC
// placement only).
func (e *Engine) TamperECCLane(addr uint64, bit int) error {
	blk, err := e.attackBlock(addr)
	if err != nil {
		return err
	}
	if e.cfg.Placement != MACInECC {
		return fmt.Errorf("core: ECC lane only exists under MACInECC")
	}
	meta, ok := e.eccMeta[blk]
	if !ok {
		return fmt.Errorf("core: block %#x not resident", addr)
	}
	e.eccMeta[blk] = meta.Flip(bit)
	return nil
}

// TamperInlineTag flips one bit of a block's stored MAC tag (baseline
// placement only).
func (e *Engine) TamperInlineTag(addr uint64, bit int) error {
	blk, err := e.attackBlock(addr)
	if err != nil {
		return err
	}
	if e.cfg.Placement != MACInline {
		return fmt.Errorf("core: inline tags only exist under MACInline")
	}
	if bit < 0 || bit >= 64 {
		return fmt.Errorf("core: bit %d out of range", bit)
	}
	if _, ok := e.inlineTag[blk]; !ok {
		return fmt.Errorf("core: block %#x not resident", addr)
	}
	e.inlineTag[blk] ^= 1 << uint(bit)
	return nil
}

// TamperCounterBlock flips one bit of a stored counter-block image — the
// attack Bonsai Merkle trees exist to catch.
func (e *Engine) TamperCounterBlock(midx uint64, bit int) error {
	if e.cfg.DisableEncryption {
		return fmt.Errorf("core: no metadata when encryption is disabled")
	}
	if midx >= e.tr.Leaves() {
		return fmt.Errorf("core: metadata block %d out of range", midx)
	}
	if bit < 0 || bit >= BlockBytes*8 {
		return fmt.Errorf("core: bit %d out of range", bit)
	}
	img, ok := e.metaImages[midx]
	if !ok {
		img = new([BlockBytes]byte)
		e.metaImages[midx] = img
	}
	img[bit/8] ^= 1 << uint(bit%8)
	return nil
}

// TamperTreeNode flips one bit of an off-chip tree node.
func (e *Engine) TamperTreeNode(id tree.NodeID, bit int) error {
	if e.cfg.DisableEncryption {
		return fmt.Errorf("core: no tree when encryption is disabled")
	}
	return e.tr.CorruptNode(id, bit)
}

// BlockSnapshot captures everything an attacker can record about one block
// for a later replay: ciphertext, MAC storage, and its counter-block image.
type BlockSnapshot struct {
	addr       uint64
	hasData    bool
	ciphertext [BlockBytes]byte
	eccMeta    macecc.Meta
	inlineTag  uint64
	dataCheck  [8]uint8
	counterImg [BlockBytes]byte
}

// Snapshot records the DRAM-visible state of a block.
func (e *Engine) Snapshot(addr uint64) (BlockSnapshot, error) {
	var s BlockSnapshot
	blk, err := e.attackBlock(addr)
	if err != nil {
		return s, err
	}
	s.addr = addr
	if ct, ok := e.data[blk]; ok {
		s.hasData = true
		s.ciphertext = *ct
		s.eccMeta = e.eccMeta[blk]
		s.inlineTag = e.inlineTag[blk]
		if c := e.dataCheck[blk]; c != nil {
			s.dataCheck = *c
		}
	}
	s.counterImg = *e.metaImage(e.scheme.MetadataBlock(blk))
	return s, nil
}

// Replay restores a previous snapshot into DRAM — data, MAC bits, and the
// counter block together, the §2.1 replay attack. The tree (whose top level
// the attacker cannot reach) is left as-is, so a subsequent Read must fail.
func (e *Engine) Replay(s BlockSnapshot) error {
	return e.replayAt(s, s.addr)
}

// Splice plants a snapshot's data and MAC bits at a *different* address —
// the block-relocation attack. The counter block is not moved (it covers
// the original address range); the address-bound MAC is what must catch
// this.
func (e *Engine) Splice(s BlockSnapshot, addr uint64) error {
	blk, err := e.attackBlock(addr)
	if err != nil {
		return err
	}
	if !s.hasData {
		return fmt.Errorf("core: snapshot holds no data to splice")
	}
	ct := new([BlockBytes]byte)
	*ct = s.ciphertext
	e.data[blk] = ct
	if e.cfg.Placement == MACInECC {
		e.eccMeta[blk] = s.eccMeta
	} else {
		e.inlineTag[blk] = s.inlineTag
		check := new([8]uint8)
		*check = s.dataCheck
		e.dataCheck[blk] = check
	}
	return nil
}

func (e *Engine) replayAt(s BlockSnapshot, addr uint64) error {
	blk, err := e.attackBlock(addr)
	if err != nil {
		return err
	}
	if s.hasData {
		ct := new([BlockBytes]byte)
		*ct = s.ciphertext
		e.data[blk] = ct
		if e.cfg.Placement == MACInECC {
			e.eccMeta[blk] = s.eccMeta
		} else {
			e.inlineTag[blk] = s.inlineTag
			check := new([8]uint8)
			*check = s.dataCheck
			e.dataCheck[blk] = check
		}
	}
	img := new([BlockBytes]byte)
	*img = s.counterImg
	e.metaImages[e.scheme.MetadataBlock(blk)] = img
	return nil
}

func (e *Engine) attackBlock(addr uint64) (uint64, error) {
	if e.cfg.DisableEncryption {
		return 0, fmt.Errorf("core: nothing to attack when encryption is disabled")
	}
	if err := e.checkAddr(addr); err != nil {
		return 0, err
	}
	return addr / BlockBytes, nil
}

// ScrubReport summarizes one patrol-scrub pass (§3.3).
type ScrubReport struct {
	// BlocksScanned is the number of resident blocks checked.
	BlocksScanned int
	// ParityFlagged is how many failed the 1-bit parity scan.
	ParityFlagged int
	// Corrected is how many were repaired by the follow-up
	// flip-and-check.
	Corrected int
	// Uncorrectable is how many could not be repaired.
	Uncorrectable int
}

// Scrub runs a patrol-scrubber pass over all resident blocks (MAC-in-ECC
// placement): the cheap parity bit screens each block; only parity
// mismatches pay for a full MAC verification and correction. Even-weight
// faults are invisible to the parity screen — by design; the next demand
// read still catches them.
func (e *Engine) Scrub() (ScrubReport, error) {
	var r ScrubReport
	if e.cfg.DisableEncryption || e.cfg.Placement != MACInECC {
		return r, fmt.Errorf("core: scrubbing requires MACInECC")
	}
	e.stats.ScrubPasses++
	for blk, ct := range e.data {
		r.BlocksScanned++
		meta := e.eccMeta[blk]
		// Two one-XOR-tree screens (§3.3): data parity and the MAC
		// codeword's own parity.
		if macecc.Scrub(ct[:], meta) && macecc.ScrubMeta(meta) {
			continue
		}
		r.ParityFlagged++
		e.stats.ScrubFlagged++
		midx := e.scheme.MetadataBlock(blk)
		counter, err := e.decodeCounter(e.metaImage(midx), blk)
		if err != nil {
			r.Uncorrectable++
			continue
		}
		out, err := e.ver.VerifyAndCorrect(ct[:], &meta, blk*BlockBytes, counter)
		if err != nil {
			return r, err
		}
		if out.Status == macecc.OK {
			e.eccMeta[blk] = meta
			if out.CorrectedDataBits > 0 || out.CorrectedMACBits > 0 {
				r.Corrected++
			}
		} else {
			r.Uncorrectable++
		}
	}
	return r, nil
}
