package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"authmem/internal/tree"
)

// This file is the adversary's (and the fault injector's) interface to the
// engine: every byte an attacker with physical DRAM access could touch is
// reachable here, and nothing inside the trust boundary is.

// TamperCiphertext flips one bit of a stored ciphertext block. It models
// both a bus/cold-boot attack and a DRAM fault, which are indistinguishable
// to the controller.
func (e *Engine) TamperCiphertext(addr uint64, bit int) error {
	blk, err := e.attackBlock(addr)
	if err != nil {
		return err
	}
	if bit < 0 || bit >= BlockBytes*8 {
		return fmt.Errorf("core: bit %d out of range", bit)
	}
	ct := e.store.Ciphertext(blk)
	if ct == nil {
		return fmt.Errorf("core: block %#x not resident", addr)
	}
	// The fault lands in DRAM; drop any trusted on-chip copy so reads take
	// the detection path a cold cache would (see TamperCounterBlock).
	if e.bc != nil {
		e.bc.evict(blk)
	}
	ct[bit/8] ^= 1 << uint(bit%8)
	return nil
}

// TamperECCLane flips one of the 64 ECC-lane bits of a block (MAC-in-ECC
// placement only).
func (e *Engine) TamperECCLane(addr uint64, bit int) error {
	blk, err := e.attackBlock(addr)
	if err != nil {
		return err
	}
	if e.cfg.Placement != MACInECC {
		return fmt.Errorf("core: ECC lane only exists under MACInECC")
	}
	if bit < 0 || bit >= 64 {
		return fmt.Errorf("core: bit %d out of range", bit)
	}
	if !e.store.Present(blk) {
		return fmt.Errorf("core: block %#x not resident", addr)
	}
	if e.bc != nil {
		e.bc.evict(blk)
	}
	e.store.SetMeta(blk, e.store.Meta(blk)^1<<uint(bit))
	return nil
}

// TamperCheckBit flips one bit of a block's stored check bytes (inline
// placement only — the codec's dedicated check storage next to the inline
// tag). The attackable bit space is InlineCheckBits wide: 64 bits for
// SEC-DED(72,64), 32 for the residue code.
func (e *Engine) TamperCheckBit(addr uint64, bit int) error {
	blk, err := e.attackBlock(addr)
	if err != nil {
		return err
	}
	if e.cfg.Placement != MACInline {
		return fmt.Errorf("core: check bytes only exist under MACInline")
	}
	if bit < 0 || bit >= e.InlineCheckBits() {
		return fmt.Errorf("core: bit %d out of range", bit)
	}
	if !e.store.Present(blk) {
		return fmt.Errorf("core: block %#x not resident", addr)
	}
	if e.bc != nil {
		e.bc.evict(blk)
	}
	e.store.Check(blk)[bit/8] ^= 1 << uint(bit%8)
	return nil
}

// TamperInlineTag flips one bit of a block's stored MAC tag (baseline
// placement only).
func (e *Engine) TamperInlineTag(addr uint64, bit int) error {
	blk, err := e.attackBlock(addr)
	if err != nil {
		return err
	}
	if e.cfg.Placement != MACInline {
		return fmt.Errorf("core: inline tags only exist under MACInline")
	}
	if bit < 0 || bit >= 64 {
		return fmt.Errorf("core: bit %d out of range", bit)
	}
	if !e.store.Present(blk) {
		return fmt.Errorf("core: block %#x not resident", addr)
	}
	if e.bc != nil {
		e.bc.evict(blk)
	}
	e.store.SetMeta(blk, e.store.Meta(blk)^1<<uint(bit))
	return nil
}

// TamperCounterBlock flips one bit of a stored counter-block image — the
// attack Bonsai Merkle trees exist to catch.
func (e *Engine) TamperCounterBlock(midx uint64, bit int) error {
	if e.cfg.DisableEncryption {
		return fmt.Errorf("core: no metadata when encryption is disabled")
	}
	if midx >= e.tr.Leaves() {
		return fmt.Errorf("core: metadata block %d out of range", midx)
	}
	if bit < 0 || bit >= BlockBytes*8 {
		return fmt.Errorf("core: bit %d out of range", bit)
	}
	// The fault lands in DRAM; model the line as not (or no longer)
	// resident in the counter cache so the detection path is exercised —
	// a warm cache would mask DRAM faults until eviction by design.
	if e.cc != nil {
		e.cc.evict(midx)
	}
	if e.bc != nil {
		e.bc.flush() // the image covers a whole group of data blocks
	}
	img := e.images.Store(midx)
	img[bit/8] ^= 1 << uint(bit%8)
	return nil
}

// TamperTreeNode flips one bit of an off-chip tree node.
func (e *Engine) TamperTreeNode(id tree.NodeID, bit int) error {
	if e.cfg.DisableEncryption {
		return fmt.Errorf("core: no tree when encryption is disabled")
	}
	// A tree node covers many counter blocks; a cached line would bypass
	// the corrupted walk entirely. Flush so reads take the detection path.
	if e.cc != nil {
		e.cc.flush()
	}
	if e.bc != nil {
		e.bc.flush()
	}
	return e.tr.CorruptNode(id, bit)
}

// BlockSnapshot captures everything an attacker can record about one block
// for a later replay: ciphertext, MAC storage, and its counter-block image.
type BlockSnapshot struct {
	addr       uint64
	hasData    bool
	ciphertext [BlockBytes]byte
	meta       uint64   // ECC-lane image or inline tag
	dataCheck  [8]uint8 // inline codec check bytes; first CheckBytes used
	counterImg [BlockBytes]byte
}

// Snapshot records the DRAM-visible state of a block.
func (e *Engine) Snapshot(addr uint64) (BlockSnapshot, error) {
	var s BlockSnapshot
	blk, err := e.attackBlock(addr)
	if err != nil {
		return s, err
	}
	s.addr = addr
	if ct := e.store.Ciphertext(blk); ct != nil {
		s.hasData = true
		copy(s.ciphertext[:], ct)
		s.meta = e.store.Meta(blk)
		if e.cfg.Placement == MACInline {
			copy(s.dataCheck[:], e.store.Check(blk))
		}
	}
	copy(s.counterImg[:], e.images.Load(e.scheme.MetadataBlock(blk)))
	return s, nil
}

// Replay restores a previous snapshot into DRAM — data, MAC bits, and the
// counter block together, the §2.1 replay attack. The tree (whose top level
// the attacker cannot reach) is left as-is, so a subsequent Read must fail.
func (e *Engine) Replay(s BlockSnapshot) error {
	return e.replayAt(s, s.addr)
}

// Splice plants a snapshot's data and MAC bits at a *different* address —
// the block-relocation attack. The counter block is not moved (it covers
// the original address range); the address-bound MAC is what must catch
// this.
func (e *Engine) Splice(s BlockSnapshot, addr uint64) error {
	blk, err := e.attackBlock(addr)
	if err != nil {
		return err
	}
	if !s.hasData {
		return fmt.Errorf("core: snapshot holds no data to splice")
	}
	e.plantSnapshot(blk, &s)
	return nil
}

func (e *Engine) replayAt(s BlockSnapshot, addr uint64) error {
	blk, err := e.attackBlock(addr)
	if err != nil {
		return err
	}
	if s.hasData {
		e.plantSnapshot(blk, &s)
	}
	midx := e.scheme.MetadataBlock(blk)
	if e.cc != nil {
		e.cc.evict(midx) // replayed line is a DRAM fault; see TamperCounterBlock
	}
	copy(e.images.Store(midx), s.counterImg[:])
	return nil
}

// plantSnapshot writes a snapshot's data and MAC bits into blk's DRAM.
func (e *Engine) plantSnapshot(blk uint64, s *BlockSnapshot) {
	if e.bc != nil {
		e.bc.evict(blk) // the replayed bits are a DRAM-level attack
	}
	copy(e.store.Materialize(blk), s.ciphertext[:])
	e.store.SetMeta(blk, s.meta)
	if e.cfg.Placement == MACInline {
		copy(e.store.Check(blk), s.dataCheck[:])
	}
}

func (e *Engine) attackBlock(addr uint64) (uint64, error) {
	if e.cfg.DisableEncryption {
		return 0, fmt.Errorf("core: nothing to attack when encryption is disabled")
	}
	if err := e.checkAddr(addr); err != nil {
		return 0, err
	}
	return addr / BlockBytes, nil
}

// ScrubReport summarizes one patrol-scrub pass (§3.3).
type ScrubReport struct {
	// BlocksScanned is the number of resident blocks checked.
	BlocksScanned int
	// ParityFlagged is how many failed the 1-bit parity scan.
	ParityFlagged int
	// Corrected is how many were repaired by the follow-up
	// flip-and-check.
	Corrected int
	// Uncorrectable is how many could not be repaired.
	Uncorrectable int
}

// Scrub runs a patrol-scrubber pass over all resident blocks (MAC-in-ECC
// placement): the cheap parity bit screens each block; only parity
// mismatches pay for a full MAC verification and correction. Even-weight
// faults are invisible to the parity screen — by design; the next demand
// read still catches them.
func (e *Engine) Scrub() (ScrubReport, error) {
	if err := e.checkScrubbable(); err != nil {
		return ScrubReport{}, err
	}
	// The correction path decodes counters from stored images; flush so
	// dirty leaves are written back before they are consulted.
	if err := e.Flush(); err != nil {
		return ScrubReport{}, err
	}
	e.stats.ScrubPasses.Add(1)
	var r ScrubReport
	var flagged []uint64
	e.store.forEach(func(blk uint64, ct []byte, meta *uint64, _ []byte) {
		r.BlocksScanned++
		if e.ver.ScrubData(ct, *meta) && e.ver.ScrubLane(*meta) {
			return
		}
		flagged = append(flagged, blk)
	})
	err := e.correctFlagged(flagged, &r)
	return r, err
}

// ParallelScrub runs the same patrol-scrub pass with the parity screen
// sharded across workers (GOMAXPROCS when workers <= 0). The screen phase
// only reads ciphertext and metadata — the arena is not mutated — so the
// shards race with nothing. Flagged blocks are then corrected serially,
// exactly as Scrub does, since correction writes repaired bits back.
func (e *Engine) ParallelScrub(workers int) (ScrubReport, error) {
	if err := e.checkScrubbable(); err != nil {
		return ScrubReport{}, err
	}
	if err := e.Flush(); err != nil { // see Scrub
		return ScrubReport{}, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if chunks := e.store.chunkCount(); workers > chunks && chunks > 0 {
		workers = chunks
	}
	e.stats.ScrubPasses.Add(1)

	scanned := make([]int, workers)
	flaggedBy := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ci := w; ci < e.store.chunkCount(); ci += workers {
				e.store.forEachInChunk(ci, func(blk uint64, ct []byte, meta *uint64) {
					scanned[w]++
					// ScrubData/ScrubLane are pure (see ecc.LaneVerifier),
					// so sharing the engine's verifier across shards races
					// with nothing.
					if e.ver.ScrubData(ct, *meta) && e.ver.ScrubLane(*meta) {
						return
					}
					flaggedBy[w] = append(flaggedBy[w], blk)
				})
			}
		}(w)
	}
	wg.Wait()

	var r ScrubReport
	var flagged []uint64
	for w := 0; w < workers; w++ {
		r.BlocksScanned += scanned[w]
		flagged = append(flagged, flaggedBy[w]...)
	}
	// Deterministic correction order regardless of worker interleaving.
	sort.Slice(flagged, func(i, j int) bool { return flagged[i] < flagged[j] })
	err := e.correctFlagged(flagged, &r)
	return r, err
}

func (e *Engine) checkScrubbable() error {
	if e.cfg.DisableEncryption || e.cfg.Placement != MACInECC {
		return fmt.Errorf("core: scrubbing requires MACInECC")
	}
	return nil
}

// correctFlagged runs the full flip-and-check correction on each
// parity-flagged block, writing repaired bits back into the arena.
func (e *Engine) correctFlagged(flagged []uint64, r *ScrubReport) error {
	for _, blk := range flagged {
		r.ParityFlagged++
		e.stats.ScrubFlagged.Add(1)
		midx := e.scheme.MetadataBlock(blk)
		counter, err := e.decodeCounter(e.images.Load(midx), blk)
		if err != nil {
			r.Uncorrectable++
			continue
		}
		ct := e.store.Ciphertext(blk)
		lane, out, err := e.ver.VerifyAndCorrect(ct, e.store.Meta(blk), blk*BlockBytes, counter)
		if err != nil {
			return err
		}
		if out.OK {
			e.store.SetMeta(blk, lane)
			if out.CorrectedDataBits > 0 || out.CorrectedMACBits > 0 {
				r.Corrected++
			}
		} else {
			r.Uncorrectable++
		}
	}
	return nil
}
