package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"authmem/internal/ctr"
)

// persistCampaign writes a mixed workload (including enough hot writes to
// force re-encryptions on grouped schemes) and returns the ground truth.
func persistCampaign(t *testing.T, e *Engine) map[uint64][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	truth := make(map[uint64][]byte)
	for i := 0; i < 3000; i++ {
		blk := uint64(rng.Intn(400))
		if i%3 == 0 {
			blk = uint64(rng.Intn(4)) // hot
		}
		data := block(rng.Int63())
		if err := e.Write(blk*BlockBytes, data); err != nil {
			t.Fatal(err)
		}
		truth[blk*BlockBytes] = data
	}
	return truth
}

func TestPersistResumeRoundTrip(t *testing.T) {
	for _, cfg := range allDesignPoints() {
		name := cfg.Scheme.String() + "/" + cfg.Placement.String()
		e := newEngine(t, cfg)
		truth := persistCampaign(t, e)

		var buf bytes.Buffer
		digest, err := e.Persist(&buf)
		if err != nil {
			t.Fatalf("%s: persist: %v", name, err)
		}

		r, err := Resume(cfg, bytes.NewReader(buf.Bytes()), &digest)
		if err != nil {
			t.Fatalf("%s: resume: %v", name, err)
		}
		dst := make([]byte, BlockBytes)
		for addr, want := range truth {
			if _, err := r.Read(addr, dst); err != nil {
				t.Fatalf("%s: read %#x after resume: %v", name, addr, err)
			}
			if !bytes.Equal(dst, want) {
				t.Fatalf("%s: block %#x corrupted across persist/resume", name, addr)
			}
		}
		// The resumed engine keeps working: writes advance counters from
		// the restored state without nonce reuse (verified by reading
		// back under the new counter).
		fresh := block(1234)
		if err := r.Write(0, fresh); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Read(0, dst); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dst, fresh) {
			t.Fatalf("%s: post-resume write broken", name)
		}
	}
}

func TestResumeRejectsTamperedImage(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInECC)
	e := newEngine(t, cfg)
	truth := persistCampaign(t, e)
	var buf bytes.Buffer
	digest, err := e.Persist(&buf)
	if err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()

	// Section offsets (MACInECC layout): magic 8 + header 40, then the
	// data section (count + n*(idx 8 + ct 64 + meta 8)), then the counter
	// images (count + m*(idx 8 + 64)).
	dataOff := 8 + 6*8
	nBlocks := e.store.Len()
	metaOff := dataOff + 8 + nBlocks*(8+64+8)

	// 1. Tampering a counter-block image is caught eagerly at Resume by
	// the tree verification.
	bad := append([]byte(nil), img...)
	bad[metaOff+8+8+20] ^= 0x40 // 20th byte of the first stored image
	var ie *IntegrityError
	if _, err := Resume(cfg, bytes.NewReader(bad), &digest); !errors.As(err, &ie) {
		t.Fatalf("tampered counter image resumed: %v", err)
	}

	// 2. Tampering the trusted top level is caught by the digest pin.
	bad = append([]byte(nil), img...)
	bad[len(bad)-1] ^= 0x01
	if _, err := Resume(cfg, bytes.NewReader(bad), &digest); !errors.As(err, &ie) {
		t.Fatalf("tampered root resumed under a pinned digest: %v", err)
	}

	// 3. A single ciphertext bit flip is an ordinary correctable memory
	// fault: Resume succeeds and the demand read repairs it.
	bad = append([]byte(nil), img...)
	bad[dataOff+8+8+30] ^= 0x04 // a ciphertext byte of the first block
	r, err := Resume(cfg, bytes.NewReader(bad), &digest)
	if err != nil {
		t.Fatalf("correctable fault blocked resume: %v", err)
	}
	dst := make([]byte, BlockBytes)
	for addr, want := range truth {
		if _, err := r.Read(addr, dst); err != nil {
			t.Fatalf("read %#x: %v", addr, err)
		}
		if !bytes.Equal(dst, want) {
			t.Fatalf("block %#x wrong after fault repair", addr)
		}
	}
}

func TestResumeRejectsRollback(t *testing.T) {
	// Whole-image rollback: persist, write more, persist again; resuming
	// the OLD image with the NEW digest must fail.
	cfg := smallCfg(ctr.Delta, MACInECC)
	e := newEngine(t, cfg)
	persistCampaign(t, e)
	var old bytes.Buffer
	if _, err := e.Persist(&old); err != nil {
		t.Fatal(err)
	}
	if err := e.Write(0, block(77)); err != nil {
		t.Fatal(err)
	}
	var cur bytes.Buffer
	curDigest, err := e.Persist(&cur)
	if err != nil {
		t.Fatal(err)
	}

	_, err = Resume(cfg, bytes.NewReader(old.Bytes()), &curDigest)
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("rollback to old image not detected: %v", err)
	}
	// Without the digest pin, the rollback goes through — the documented
	// residual risk.
	if _, err := Resume(cfg, bytes.NewReader(old.Bytes()), nil); err != nil {
		t.Fatalf("unpinned resume should succeed: %v", err)
	}
}

func TestResumeRejectsConfigMismatch(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInECC)
	e := newEngine(t, cfg)
	persistCampaign(t, e)
	var buf bytes.Buffer
	if _, err := e.Persist(&buf); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Scheme = ctr.Split
	if _, err := Resume(other, bytes.NewReader(buf.Bytes()), nil); err == nil {
		t.Fatal("scheme mismatch should fail")
	}
	other = cfg
	other.RegionBytes *= 2
	if _, err := Resume(other, bytes.NewReader(buf.Bytes()), nil); err == nil {
		t.Fatal("region mismatch should fail")
	}
}

func TestResumeRejectsGarbage(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInECC)
	if _, err := Resume(cfg, bytes.NewReader([]byte("not an image")), nil); err == nil {
		t.Fatal("garbage should fail")
	}
	if _, err := Resume(cfg, bytes.NewReader(nil), nil); err == nil {
		t.Fatal("empty input should fail")
	}
}

func TestResumeTruncatedImage(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInECC)
	e := newEngine(t, cfg)
	persistCampaign(t, e)
	var buf bytes.Buffer
	if _, err := e.Persist(&buf); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	for _, cut := range []int{9, len(img) / 3, len(img) - 5} {
		if _, err := Resume(cfg, bytes.NewReader(img[:cut]), nil); err == nil {
			t.Fatalf("truncation at %d resumed cleanly", cut)
		}
	}
}

func TestResumeWithWrongKeyFailsOnRead(t *testing.T) {
	// The key never travels with the image. A resume under the wrong key
	// rebuilds... nothing usable: tree verification fails immediately
	// (node MACs were computed under the real key).
	cfg := smallCfg(ctr.Delta, MACInECC)
	e := newEngine(t, cfg)
	persistCampaign(t, e)
	var buf bytes.Buffer
	if _, err := e.Persist(&buf); err != nil {
		t.Fatal(err)
	}
	wrong := cfg
	wrong.KeyMaterial = make([]byte, KeyMaterialLen)
	_, err := Resume(wrong, bytes.NewReader(buf.Bytes()), nil)
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("wrong-key resume should fail integrity: %v", err)
	}
}

func TestPersistDisabledEncryption(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInECC)
	cfg.DisableEncryption = true
	cfg.KeyMaterial = nil
	e := newEngine(t, cfg)
	if _, err := e.Persist(&bytes.Buffer{}); err == nil {
		t.Fatal("persist without encryption should fail")
	}
	if _, err := Resume(cfg, bytes.NewReader(nil), nil); err == nil {
		t.Fatal("resume without encryption should fail")
	}
}

func TestPersistDeterministic(t *testing.T) {
	cfg := smallCfg(ctr.Split, MACInline)
	e := newEngine(t, cfg)
	persistCampaign(t, e)
	var a, b bytes.Buffer
	da, err := e.Persist(&a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := e.Persist(&b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) || da != db {
		t.Fatal("persist image not deterministic")
	}
}
