package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"authmem/internal/ctr"
	"authmem/internal/ecc"
)

// codecConfigs returns one engine configuration per registered ECC codec,
// each under the codec's implied MAC placement. Iterating ecc.Names() means
// a future codec joins the conformance suite the moment it registers.
func codecConfigs() []Config {
	var cfgs []Config
	for _, name := range ecc.Names() {
		cod, err := ecc.Lookup(name)
		if err != nil {
			panic(err)
		}
		place := MACInline
		if cod.CarriesMAC() {
			place = MACInECC
		}
		cfg := smallCfg(ctr.Delta, place)
		cfg.ECCCodec = name
		cfgs = append(cfgs, cfg)
	}
	return cfgs
}

// TestCodecConformanceCleanTrace runs the identical write/read trace under
// every codec: plaintext in must be plaintext out, bit for bit, regardless
// of which check code protects the stored blocks.
func TestCodecConformanceCleanTrace(t *testing.T) {
	type readback map[uint64][]byte
	results := map[string]readback{}

	for _, cfg := range codecConfigs() {
		e := newEngine(t, cfg)
		if got := e.ECCCodec(); got != cfg.ECCCodec {
			t.Fatalf("engine reports codec %q, config selected %q", got, cfg.ECCCodec)
		}
		rng := rand.New(rand.NewSource(77))
		truth := make(map[uint64][]byte)
		for i := 0; i < 2000; i++ {
			blk := uint64(rng.Intn(300))
			data := block(rng.Int63())
			if err := e.Write(blk*BlockBytes, data); err != nil {
				t.Fatalf("%s: write: %v", cfg.ECCCodec, err)
			}
			truth[blk*BlockBytes] = data
		}
		got := readback{}
		dst := make([]byte, BlockBytes)
		for addr, want := range truth {
			if _, err := e.Read(addr, dst); err != nil {
				t.Fatalf("%s: read %#x: %v", cfg.ECCCodec, addr, err)
			}
			if !bytes.Equal(dst, want) {
				t.Fatalf("%s: block %#x read back wrong", cfg.ECCCodec, addr)
			}
			got[addr] = append([]byte(nil), dst...)
		}
		results[cfg.ECCCodec] = got
	}

	// Cross-codec: every codec returned byte-identical reads.
	var base readback
	var baseName string
	for name, rb := range results {
		if base == nil {
			base, baseName = rb, name
			continue
		}
		for addr, want := range base {
			if !bytes.Equal(rb[addr], want) {
				t.Fatalf("codecs %s and %s disagree at %#x", baseName, name, addr)
			}
		}
	}
}

// TestCodecConformanceDataFaultNeverSilent is the safety bar every codec
// must clear: random 1-4 bit ciphertext faults may be corrected (bytes must
// then match the original exactly) or refused loudly, but a successful read
// must never return wrong bytes.
func TestCodecConformanceDataFaultNeverSilent(t *testing.T) {
	for _, cfg := range codecConfigs() {
		e := newEngine(t, cfg)
		rng := rand.New(rand.NewSource(31))
		dst := make([]byte, BlockBytes)
		for trial := 0; trial < 400; trial++ {
			addr := uint64(rng.Intn(200)) * BlockBytes
			want := block(rng.Int63())
			if err := e.Write(addr, want); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 1+rng.Intn(4); i++ {
				if err := e.TamperCiphertext(addr, rng.Intn(8*BlockBytes)); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := e.Read(addr, dst); err == nil {
				if !bytes.Equal(dst, want) {
					t.Fatalf("%s: trial %d: silent corruption at %#x", cfg.ECCCodec, trial, addr)
				}
			}
			// Restore a known-good block either way.
			if err := e.Write(addr, want); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestCodecConformanceCheckFaultNeverSilent targets the check storage
// itself: the packed lane under macsecded, the inline tag and the codec's
// check bytes under the block codecs. Check-plane faults never change the
// data, so any successful read must return the original bytes.
func TestCodecConformanceCheckFaultNeverSilent(t *testing.T) {
	for _, cfg := range codecConfigs() {
		e := newEngine(t, cfg)
		rng := rand.New(rand.NewSource(41))
		dst := make([]byte, BlockBytes)
		for trial := 0; trial < 300; trial++ {
			addr := uint64(rng.Intn(200)) * BlockBytes
			want := block(rng.Int63())
			if err := e.Write(addr, want); err != nil {
				t.Fatal(err)
			}
			if cfg.Placement == MACInECC {
				if err := e.TamperECCLane(addr, rng.Intn(64)); err != nil {
					t.Fatal(err)
				}
			} else if trial%2 == 0 {
				if err := e.TamperInlineTag(addr, rng.Intn(64)); err != nil {
					t.Fatal(err)
				}
			} else {
				if err := e.TamperCheckBit(addr, rng.Intn(e.InlineCheckBits())); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := e.Read(addr, dst); err == nil {
				if !bytes.Equal(dst, want) {
					t.Fatalf("%s: trial %d: silent corruption at %#x", cfg.ECCCodec, trial, addr)
				}
			}
			if err := e.Write(addr, want); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestCodecCorrectionSemantics pins the per-codec single-bit contract: the
// correcting codes repair one flipped ciphertext bit transparently, the
// detection-only residue code refuses the read loudly.
func TestCodecCorrectionSemantics(t *testing.T) {
	for _, cfg := range codecConfigs() {
		e := newEngine(t, cfg)
		want := block(99)
		if err := e.Write(0, want); err != nil {
			t.Fatal(err)
		}
		if err := e.TamperCiphertext(0, 13); err != nil {
			t.Fatal(err)
		}
		dst := make([]byte, BlockBytes)
		_, err := e.Read(0, dst)
		switch cfg.ECCCodec {
		case "secded", "macsecded":
			if err != nil {
				t.Fatalf("%s: single-bit fault not corrected: %v", cfg.ECCCodec, err)
			}
			if !bytes.Equal(dst, want) {
				t.Fatalf("%s: corrected read returned wrong bytes", cfg.ECCCodec)
			}
			st := e.Stats()
			if st.SECDEDCorrected+st.CorrectedDataBits == 0 {
				t.Fatalf("%s: correction left no stats trace: %+v", cfg.ECCCodec, st)
			}
		case "residue":
			if err == nil {
				t.Fatal("residue: detection-only codec silently served a faulted block")
			}
		default:
			t.Fatalf("unpinned codec %q: extend this test", cfg.ECCCodec)
		}
	}
}

// TestResumeCodecMismatch: a persisted image must only resume under the
// codec that wrote it — the check storage layout differs, so resuming under
// another codec is a typed, actionable error, not a MAC failure downstream.
func TestResumeCodecMismatch(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInline)
	cfg.ECCCodec = "secded"
	e := newEngine(t, cfg)
	if err := e.Write(0, block(7)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	digest, err := e.Persist(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Same placement, different codec: typed mismatch error.
	bad := cfg
	bad.ECCCodec = "residue"
	_, err = Resume(bad, bytes.NewReader(buf.Bytes()), &digest)
	var mm *CodecMismatchError
	if !errors.As(err, &mm) {
		t.Fatalf("resume under residue: got %v, want *CodecMismatchError", err)
	}
	if mm.ImageCodec != "secded" || mm.ConfigCodec != "residue" {
		t.Fatalf("mismatch error fields: %+v", mm)
	}

	// The writing codec still resumes.
	r, err := Resume(cfg, bytes.NewReader(buf.Bytes()), &digest)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, BlockBytes)
	if _, err := r.Read(0, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, block(7)) {
		t.Fatal("resumed read returned wrong bytes")
	}
}

// TestResumeCodecMismatchSharded: the v2 sharded image wraps per-shard v1
// images, so the codec header must round-trip — and mismatch — through the
// sharded persist path too.
func TestResumeCodecMismatchSharded(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInline)
	cfg.ECCCodec = "residue"
	s, err := NewShardedEngine(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(0, block(8)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	digest, err := s.Persist(&buf)
	if err != nil {
		t.Fatal(err)
	}

	bad := cfg
	bad.ECCCodec = "secded"
	_, err = ResumeSharded(bad, 2, bytes.NewReader(buf.Bytes()), &digest)
	var mm *CodecMismatchError
	if !errors.As(err, &mm) {
		t.Fatalf("sharded resume under secded: got %v, want *CodecMismatchError", err)
	}
	if mm.ImageCodec != "residue" || mm.ConfigCodec != "secded" {
		t.Fatalf("mismatch error fields: %+v", mm)
	}

	r, err := ResumeSharded(cfg, 2, bytes.NewReader(buf.Bytes()), &digest)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, BlockBytes)
	if _, err := r.Read(0, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, block(8)) {
		t.Fatal("sharded resumed read returned wrong bytes")
	}
}

// TestCodecPlacementValidation: an explicitly configured codec that cannot
// serve the configured placement is a configuration error, caught before an
// engine is built.
func TestCodecPlacementValidation(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInECC)
	cfg.ECCCodec = "residue"
	if err := cfg.Validate(); err == nil {
		t.Fatal("residue under MACInECC should fail validation")
	}
	cfg = smallCfg(ctr.Delta, MACInline)
	cfg.ECCCodec = "macsecded"
	if err := cfg.Validate(); err == nil {
		t.Fatal("macsecded under MACInline should fail validation")
	}
	cfg.ECCCodec = "no-such-codec"
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown codec should fail validation")
	}
}
