package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"testing"

	"authmem/internal/ctr"
	"authmem/internal/wal"
)

// deltaHarness drives an engine through base-persist + epoch appends while
// keeping a plaintext oracle snapshot per committed epoch.
type deltaHarness struct {
	cfg   Config
	eng   *Engine
	base  bytes.Buffer
	log   bytes.Buffer
	w     *wal.Writer
	rng   *rand.Rand
	truth map[uint64][]byte
	// epochTruth[k] is the oracle after k committed epochs (index 0 =
	// state at the base snapshot).
	epochTruth []map[uint64][]byte
	epochRoots []RootDigest
}

func copyTruth(m map[uint64][]byte) map[uint64][]byte {
	c := make(map[uint64][]byte, len(m))
	for k, v := range m {
		c[k] = append([]byte(nil), v...)
	}
	return c
}

func newDeltaHarness(t *testing.T, cfg Config, pipeline bool) *deltaHarness {
	t.Helper()
	h := &deltaHarness{
		cfg:   cfg,
		eng:   newEngine(t, cfg),
		rng:   rand.New(rand.NewSource(77)),
		truth: make(map[uint64][]byte),
	}
	if pipeline {
		if err := h.eng.EnableWritePipeline(0); err != nil {
			t.Fatal(err)
		}
	}
	h.eng.EnableDeltaTracking()
	// Prefill, then snapshot the base and open the log against it.
	for i := 0; i < 64; i++ {
		h.write(t, uint64(h.rng.Intn(640)))
	}
	if _, err := h.eng.Persist(&h.base); err != nil {
		t.Fatal(err)
	}
	w, err := h.eng.NewDeltaWriter(&h.log)
	if err != nil {
		t.Fatal(err)
	}
	h.w = w
	// The prefill writes are in the base image; drain the dirty set so the
	// first epoch holds only post-base writes.
	h.eng.delta.reset()
	h.epochTruth = append(h.epochTruth, copyTruth(h.truth))
	h.epochRoots = append(h.epochRoots, h.eng.RootDigest())
	return h
}

func (h *deltaHarness) write(t *testing.T, blk uint64) {
	t.Helper()
	data := block(h.rng.Int63())
	if err := h.eng.Write(blk*BlockBytes, data); err != nil {
		t.Fatal(err)
	}
	h.truth[blk*BlockBytes] = data
}

func (h *deltaHarness) epoch(t *testing.T, writes int) DeltaStats {
	t.Helper()
	for i := 0; i < writes; i++ {
		h.write(t, uint64(h.rng.Intn(640)))
	}
	st, err := h.eng.AppendDelta(h.w)
	if err != nil {
		t.Fatal(err)
	}
	h.epochTruth = append(h.epochTruth, copyTruth(h.truth))
	h.epochRoots = append(h.epochRoots, st.Root)
	return st
}

// verifyAtEpoch checks a recovered engine against the oracle snapshot of
// the given committed epoch: every block the oracle holds must read back
// exactly; a mismatch is the silent stale read the whole design exists to
// prevent.
func verifyAtEpoch(t *testing.T, e *Engine, h *deltaHarness, epoch int) {
	t.Helper()
	dst := make([]byte, BlockBytes)
	for addr, want := range h.epochTruth[epoch] {
		if _, err := e.Read(addr, dst); err != nil {
			t.Fatalf("read %#x at epoch %d: %v", addr, epoch, err)
		}
		if !bytes.Equal(dst, want) {
			t.Fatalf("silent stale read: block %#x differs from epoch-%d oracle", addr, epoch)
		}
	}
}

func TestIncrementalRoundTrip(t *testing.T) {
	for _, cfg := range allDesignPoints() {
		name := cfg.Scheme.String() + "/" + cfg.Placement.String() + "/" + cfg.CodecName()
		t.Run(name, func(t *testing.T) {
			h := newDeltaHarness(t, cfg, true)
			var last DeltaStats
			for i := 0; i < 4; i++ {
				last = h.epoch(t, 40)
			}
			pin := last.Root
			e, rep, err := ResumeIncremental(cfg, bytes.NewReader(h.base.Bytes()), bytes.NewReader(h.log.Bytes()), &pin)
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			if rep.Status != RecoveryClean || rep.Epochs != 4 || rep.Dropped != 0 {
				t.Fatalf("unexpected report %+v", rep)
			}
			verifyAtEpoch(t, e, h, 4)
			// The recovered engine keeps working and keeps tracking: a
			// fresh write lands in the (re-enabled) dirty set.
			if err := e.Write(0, block(9)); err != nil {
				t.Fatal(err)
			}
			if e.DirtyGroups() == 0 {
				t.Fatal("post-resume write not tracked")
			}
		})
	}
}

func TestAppendDeltaIsProportionalToDirt(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInECC)
	h := newDeltaHarness(t, cfg, true)
	// Touch one block in one group.
	h.write(t, 3)
	st, err := h.eng.AppendDelta(h.w)
	if err != nil {
		t.Fatal(err)
	}
	if st.Groups != 1 {
		t.Fatalf("one dirty group, %d records", st.Groups)
	}
	var full bytes.Buffer
	if _, err := h.eng.Persist(&full); err != nil {
		t.Fatal(err)
	}
	if st.Bytes*4 > int64(full.Len()) {
		t.Fatalf("single-group delta (%d bytes) not small next to full image (%d bytes)", st.Bytes, full.Len())
	}
	// Clean set: the next epoch carries only its commit record.
	st2, err := h.eng.AppendDelta(h.w)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Groups != 0 {
		t.Fatalf("clean engine appended %d group records", st2.Groups)
	}
}

// logRecords re-parses a delta log's framing and returns each record's end
// offset and its payload type byte. The framing is only trusted as far as
// the test uses it: to pick cut points.
func logRecords(t *testing.T, log []byte) (bounds []int64, types []byte) {
	t.Helper()
	off := int64(wal.HeaderSize)
	for off < int64(len(log)) {
		plen := int64(binary.LittleEndian.Uint32(log[off : off+4]))
		types = append(types, log[off+12])
		off += 4 + 8 + plen + 4 + 32
		bounds = append(bounds, off)
	}
	if off != int64(len(log)) {
		t.Fatalf("log does not parse to a record boundary: %d vs %d", off, len(log))
	}
	return bounds, types
}

// TestCrashPointMatrix is the satellite crash matrix: the log is cut at
// every record boundary and at several mid-record offsets, and every
// recovery must be a typed verdict whose recovered state matches the
// last-committed-epoch oracle exactly — never a silent stale read, never a
// wrong byte.
func TestCrashPointMatrix(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInECC)
	h := newDeltaHarness(t, cfg, true)
	for i := 0; i < 3; i++ {
		h.epoch(t, 12)
	}
	log := h.log.Bytes()
	bounds, types := logRecords(t, log)

	// commitsBefore[i] = committed epochs among records [0, i).
	commitsBefore := make([]int, len(bounds)+1)
	for i, typ := range types {
		commitsBefore[i+1] = commitsBefore[i]
		if typ == deltaRecCommit {
			commitsBefore[i+1]++
		}
	}

	// A cut is indistinguishable from an honest shutdown — and therefore
	// Clean — exactly when it lands on a record boundary with no group
	// records pending a commit: the bare header, or right after a commit
	// record. Everything else is a torn tail → Truncated. (Clean-but-short
	// prefixes are the truncation attack the expectRoot pin closes; see
	// TestPinDetectsTruncatedHistory.)
	type expect struct {
		epochs int
		clean  bool
	}
	cuts := map[int64]expect{
		0:                         {0, false},
		int64(wal.HeaderSize) - 3: {0, false},
		int64(wal.HeaderSize):     {0, true},
	}
	prev := int64(wal.HeaderSize)
	for i, b := range bounds {
		cuts[b] = expect{commitsBefore[i+1], types[i] == deltaRecCommit}
		cuts[prev+1] = expect{commitsBefore[i], false}     // just into the frame
		cuts[(prev+b)/2] = expect{commitsBefore[i], false} // mid-record
		cuts[b-1] = expect{commitsBefore[i], false}        // one byte short of the seal
		prev = b
	}

	for cut, want := range cuts {
		e, rep, err := ResumeIncremental(cfg, bytes.NewReader(h.base.Bytes()), bytes.NewReader(log[:cut]), nil)
		if err != nil {
			t.Fatalf("cut %d: resume refused a torn tail: %v", cut, err)
		}
		if rep.Epochs != want.epochs {
			t.Fatalf("cut %d: recovered %d epochs, crash point allows %d", cut, rep.Epochs, want.epochs)
		}
		if want.clean {
			if rep.Status != RecoveryClean {
				t.Fatalf("cut %d (boundary after commit): status %v (%s)", cut, rep.Status, rep.Reason)
			}
		} else if rep.Status != RecoveryTruncated {
			t.Fatalf("cut %d: want truncated verdict, got %v (%s)", cut, rep.Status, rep.Reason)
		}
		if rep.Root != h.epochRoots[rep.Epochs] {
			t.Fatalf("cut %d: recovered root is not the epoch-%d root", cut, rep.Epochs)
		}
		verifyAtEpoch(t, e, h, rep.Epochs)
	}
}

// TestCorruptionMatrix flips a bit in every record of the log; each flip
// must surface as a typed verdict, and any engine that resumes must sit
// exactly at a committed-epoch oracle.
func TestCorruptionMatrix(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInECC)
	h := newDeltaHarness(t, cfg, true)
	for i := 0; i < 3; i++ {
		h.epoch(t, 12)
	}
	log := h.log.Bytes()
	bounds, _ := logRecords(t, log)
	rng := rand.New(rand.NewSource(5))

	prev := int64(wal.HeaderSize)
	for i, b := range bounds {
		for trial := 0; trial < 4; trial++ {
			mut := append([]byte(nil), log...)
			bit := prev*8 + int64(rng.Intn(int(b-prev)*8))
			mut[bit/8] ^= 1 << (bit % 8)
			e, rep, err := ResumeIncremental(cfg, bytes.NewReader(h.base.Bytes()), bytes.NewReader(mut), nil)
			if err != nil {
				var rerr *RecoveryError
				if !errors.As(err, &rerr) {
					t.Fatalf("record %d: untyped resume error %v", i, err)
				}
				if rerr.Report.Status != RecoveryRollback {
					t.Fatalf("record %d: error with status %v", i, rerr.Report.Status)
				}
				continue
			}
			if rep.Status == RecoveryClean && rep.Epochs != len(h.epochTruth)-1 {
				t.Fatalf("record %d: clean verdict on a corrupted log with %d epochs", i, rep.Epochs)
			}
			if rep.Status == RecoveryClean {
				// A flip in already-cut padding cannot exist (records abut),
				// so a clean full replay means the flip did not survive...
				// which is impossible: every byte is covered by CRC + seal.
				t.Fatalf("record %d: bit flip replayed clean", i)
			}
			verifyAtEpoch(t, e, h, rep.Epochs)
		}
		prev = b
	}
}

// TestBaseImageTruncation cuts the base image (not the log) at arbitrary
// points: resume must fail loudly every time.
func TestBaseImageTruncation(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInECC)
	h := newDeltaHarness(t, cfg, true)
	h.epoch(t, 12)
	base := h.base.Bytes()
	for _, cut := range []int{0, 7, 8, len(base) / 3, len(base) / 2, len(base) - 1} {
		e, _, err := ResumeIncremental(cfg, bytes.NewReader(base[:cut]), bytes.NewReader(h.log.Bytes()), nil)
		if err == nil || e != nil {
			t.Fatalf("cut %d: truncated base image resumed", cut)
		}
	}
}

func TestPinDetectsTruncatedHistory(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInECC)
	h := newDeltaHarness(t, cfg, true)
	h.epoch(t, 12)
	two := h.epoch(t, 12)
	log := h.log.Bytes()
	bounds, types := logRecords(t, log)

	// Present only epoch 1: a valid prefix ending at the first commit.
	var firstCommitEnd int64
	for i, typ := range types {
		if typ == deltaRecCommit {
			firstCommitEnd = bounds[i]
			break
		}
	}
	pin := two.Root
	e, rep, err := ResumeIncremental(cfg, bytes.NewReader(h.base.Bytes()), bytes.NewReader(log[:firstCommitEnd]), &pin)
	if err == nil || e != nil {
		t.Fatal("truncated-at-boundary history resumed against a newer pin")
	}
	var rerr *RecoveryError
	if !errors.As(err, &rerr) || rerr.Report.Status != RecoveryRollback {
		t.Fatalf("want rollback RecoveryError, got %v (report %+v)", err, rep)
	}
}

func TestLogBoundToItsBase(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInECC)
	h := newDeltaHarness(t, cfg, true)
	h.epoch(t, 12)

	// A second base snapshot taken later: the existing log's seed is the
	// FIRST base's root, so replaying it over the newer base must fail as
	// corrupt, not apply twice.
	var base2 bytes.Buffer
	if _, err := h.eng.Persist(&base2); err != nil {
		t.Fatal(err)
	}
	e, _, err := ResumeIncremental(cfg, bytes.NewReader(base2.Bytes()), bytes.NewReader(h.log.Bytes()), nil)
	if err == nil || e != nil {
		t.Fatal("log replayed over a base it does not extend")
	}
	var rerr *RecoveryError
	if !errors.As(err, &rerr) || rerr.Report.Status != RecoveryRollback {
		t.Fatalf("want rollback RecoveryError, got %v", err)
	}
}

func TestShardedIncrementalRoundTrip(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInECC)
	const shards = 4
	s, err := NewShardedEngine(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	s.EnableDeltaTracking()
	rng := rand.New(rand.NewSource(3))
	truth := make(map[uint64][]byte)
	writeSome := func(n int) {
		for i := 0; i < n; i++ {
			addr := uint64(rng.Intn(int(cfg.RegionBytes/BlockBytes))) * BlockBytes
			data := block(rng.Int63())
			if err := s.Write(addr, data); err != nil {
				t.Fatal(err)
			}
			truth[addr] = data
		}
	}
	writeSome(200)

	var base bytes.Buffer
	if _, err := s.Persist(&base); err != nil {
		t.Fatal(err)
	}
	logs := make([]bytes.Buffer, shards)
	writers := make([]*wal.Writer, shards)
	for i := range writers {
		w, err := s.NewShardDeltaWriter(i, &logs[i])
		if err != nil {
			t.Fatal(err)
		}
		writers[i] = w
	}
	for epoch := 0; epoch < 3; epoch++ {
		writeSome(150)
		for i := range writers {
			if _, err := s.AppendDeltaShard(i, writers[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	pin := s.RootDigest()

	wals := make([]io.Reader, shards)
	for i := range wals {
		wals[i] = bytes.NewReader(logs[i].Bytes())
	}
	r, reports, err := ResumeShardedIncremental(cfg, shards, bytes.NewReader(base.Bytes()), wals, &pin)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	for i, rep := range reports {
		if rep.Status != RecoveryClean || rep.Epochs != 3 {
			t.Fatalf("shard %d report %+v", i, rep)
		}
	}
	if CombinedRecoveredRoot(reports) != pin {
		t.Fatal("combined recovered root does not match the live pin")
	}
	dst := make([]byte, BlockBytes)
	for addr, want := range truth {
		if _, err := r.Read(addr, dst); err != nil {
			t.Fatalf("read %#x: %v", addr, err)
		}
		if !bytes.Equal(dst, want) {
			t.Fatalf("block %#x corrupted across sharded incremental resume", addr)
		}
	}
	// Per-shard logs are sealed under per-shard keys: shard 1's log can
	// never replay as shard 0's.
	if shards > 1 {
		swapped := make([]io.Reader, shards)
		for i := range swapped {
			swapped[i] = bytes.NewReader(logs[(i+1)%shards].Bytes())
		}
		if _, _, err := ResumeShardedIncremental(cfg, shards, bytes.NewReader(base.Bytes()), swapped, nil); err == nil {
			t.Fatal("cross-shard log splice resumed")
		}
	}
}

// TestRecoveryVerdictsRoundTripErrorsAs is the satellite regression: the
// typed recovery error must survive errors.As through the sharded resume
// path's wrapping, exactly like *CodecMismatchError does.
func TestRecoveryVerdictsRoundTripErrorsAs(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInECC)
	const shards = 2
	s, err := NewShardedEngine(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	s.EnableDeltaTracking()
	if err := s.Write(0, block(1)); err != nil {
		t.Fatal(err)
	}
	var base bytes.Buffer
	if _, err := s.Persist(&base); err != nil {
		t.Fatal(err)
	}
	logs := make([]bytes.Buffer, shards)
	for i := 0; i < shards; i++ {
		w, err := s.NewShardDeltaWriter(i, &logs[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Write(uint64(i)*s.ShardBytes(), block(int64(i))); err != nil {
			t.Fatal(err)
		}
		if _, err := s.AppendDeltaShard(i, w); err != nil {
			t.Fatal(err)
		}
	}
	// Flip a seal bit in shard 1's log.
	raw := logs[1].Bytes()
	raw[len(raw)-1] ^= 0x80
	wals := []io.Reader{bytes.NewReader(logs[0].Bytes()), bytes.NewReader(raw)}
	_, _, err = ResumeShardedIncremental(cfg, shards, bytes.NewReader(base.Bytes()), wals, nil)
	if err == nil {
		t.Fatal("tampered shard log resumed")
	}
	var rerr *RecoveryError
	if !errors.As(err, &rerr) {
		t.Fatalf("*RecoveryError lost through shard wrapping: %v", err)
	}
	if rerr.Report.Status != RecoveryRollback {
		t.Fatalf("unexpected status %v", rerr.Report.Status)
	}
}

// TestCodecMismatchRoundTripsThroughIncrementalResume: the existing typed
// codec error must also survive the incremental sharded path.
func TestCodecMismatchRoundTripsThroughIncrementalResume(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInline)
	cfg.ECCCodec = "secded"
	const shards = 2
	s, err := NewShardedEngine(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(0, block(1)); err != nil {
		t.Fatal(err)
	}
	var base bytes.Buffer
	if _, err := s.Persist(&base); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.ECCCodec = "residue"
	_, _, err = ResumeShardedIncremental(other, shards, bytes.NewReader(base.Bytes()), nil, nil)
	var cerr *CodecMismatchError
	if !errors.As(err, &cerr) {
		t.Fatalf("*CodecMismatchError lost through incremental shard wrapping: %v", err)
	}
	if cerr.ImageCodec != "secded" || cerr.ConfigCodec != "residue" {
		t.Fatalf("mismatch fields wrong: %+v", cerr)
	}
}
