package core

import "math/bits"

// Flat slice-backed storage for the engine's DRAM-visible state.
//
// The seed engine kept five map[uint64]*... stores (ciphertext, ECC-lane
// meta, inline tags, SEC-DED bytes, counter-block images). Every access
// paid a hash + pointer chase, every write a per-block heap allocation, and
// the layout scattered a "DRAM region" across the heap. This file replaces
// them with chunked arenas: fixed-size chunks of contiguous ciphertext
// indexed directly by block number, with a presence bitmap per chunk.
//
// Chunks (64KB of data each) are materialized on first touch, so a sparse
// 512MB region does not commit 512MB up front, while a resident block costs
// one shift, one mask, and no allocation. Iteration order is ascending
// block index, which also makes persistence and scrubbing deterministic.

// chunkBlocks is the number of 64-byte blocks per arena chunk (64KB of
// ciphertext). It must be a power of two and a multiple of 64 (one
// presence-bitmap word covers 64 blocks).
const chunkBlocks = 1024

// blockChunk is one arena chunk: contiguous ciphertext plus the per-block
// 8-byte metadata lane (ECC-lane image under MACInECC, MAC tag under
// MACInline) and, for the inline placement only, the codec's check bytes.
type blockChunk struct {
	present [chunkBlocks / 64]uint64
	data    [chunkBlocks * BlockBytes]byte
	meta    [chunkBlocks]uint64
	check   []byte // chunkBlocks*checkBytes codec bytes; nil under MACInECC
}

// blockStore is a chunked arena over the protected region's blocks.
type blockStore struct {
	nblocks uint64
	// checkBytes is the per-block check stride (the inline codec's
	// CheckBytes; 0 under MACInECC or with encryption disabled).
	checkBytes int
	chunks     []*blockChunk
	resident   int
}

func newBlockStore(nblocks uint64, checkBytes int) *blockStore {
	return &blockStore{
		nblocks:    nblocks,
		checkBytes: checkBytes,
		chunks:     make([]*blockChunk, (nblocks+chunkBlocks-1)/chunkBlocks),
	}
}

// chunk returns the chunk holding blk, or nil if never materialized.
func (s *blockStore) chunk(blk uint64) (*blockChunk, uint64) {
	return s.chunks[blk/chunkBlocks], blk % chunkBlocks
}

// Present reports whether blk holds stored ciphertext.
func (s *blockStore) Present(blk uint64) bool {
	c, i := s.chunk(blk)
	return c != nil && c.present[i/64]>>(i%64)&1 == 1
}

// Len returns the number of resident blocks.
func (s *blockStore) Len() int { return s.resident }

// Ciphertext returns blk's 64-byte ciphertext slice, or nil if the block
// was never written. The slice points into the arena; callers may mutate it
// in place (fault repair does).
func (s *blockStore) Ciphertext(blk uint64) []byte {
	c, i := s.chunk(blk)
	if c == nil || c.present[i/64]>>(i%64)&1 == 0 {
		return nil
	}
	return c.data[i*BlockBytes : (i+1)*BlockBytes : (i+1)*BlockBytes]
}

// Materialize marks blk resident and returns its (possibly stale) 64-byte
// arena slice for the caller to overwrite.
func (s *blockStore) Materialize(blk uint64) []byte {
	ci := blk / chunkBlocks
	c := s.chunks[ci]
	if c == nil {
		c = new(blockChunk)
		if s.checkBytes > 0 {
			c.check = make([]byte, chunkBlocks*s.checkBytes)
		}
		s.chunks[ci] = c
	}
	i := blk % chunkBlocks
	if c.present[i/64]>>(i%64)&1 == 0 {
		c.present[i/64] |= 1 << (i % 64)
		s.resident++
	}
	return c.data[i*BlockBytes : (i+1)*BlockBytes : (i+1)*BlockBytes]
}

// Meta returns blk's 8-byte metadata lane (zero when absent).
func (s *blockStore) Meta(blk uint64) uint64 {
	c, i := s.chunk(blk)
	if c == nil {
		return 0
	}
	return c.meta[i]
}

// SetMeta stores blk's metadata lane. The block must be resident.
func (s *blockStore) SetMeta(blk uint64, v uint64) {
	c, i := s.chunk(blk)
	c.meta[i] = v
}

// Check returns blk's codec check bytes (inline placement only). The block
// must be resident; the slice points into the arena.
func (s *blockStore) Check(blk uint64) []byte {
	c, i := s.chunk(blk)
	cb := uint64(s.checkBytes)
	return c.check[i*cb : (i+1)*cb : (i+1)*cb]
}

// forEach visits every resident block in ascending order.
func (s *blockStore) forEach(fn func(blk uint64, ct []byte, meta *uint64, check []byte)) {
	for ci, c := range s.chunks {
		if c == nil {
			continue
		}
		base := uint64(ci) * chunkBlocks
		for w, words := range c.present {
			for words != 0 {
				i := uint64(w)*64 + uint64(bits.TrailingZeros64(words))
				words &= words - 1
				var check []byte
				if c.check != nil {
					cb := uint64(s.checkBytes)
					check = c.check[i*cb : (i+1)*cb]
				}
				fn(base+i, c.data[i*BlockBytes:(i+1)*BlockBytes:(i+1)*BlockBytes], &c.meta[i], check)
			}
		}
	}
}

// chunkCount returns the number of chunk slots (for sharded iteration).
func (s *blockStore) chunkCount() int { return len(s.chunks) }

// forEachInChunk visits the resident blocks of one chunk slot in ascending
// order. Safe to call concurrently for distinct chunk indices as long as no
// writer mutates the store.
func (s *blockStore) forEachInChunk(ci int, fn func(blk uint64, ct []byte, meta *uint64)) {
	c := s.chunks[ci]
	if c == nil {
		return
	}
	base := uint64(ci) * chunkBlocks
	for w, words := range c.present {
		for words != 0 {
			i := uint64(w)*64 + uint64(bits.TrailingZeros64(words))
			words &= words - 1
			fn(base+i, c.data[i*BlockBytes:(i+1)*BlockBytes:(i+1)*BlockBytes], &c.meta[i])
		}
	}
}

// imageChunk is one chunk of 64-byte counter-block images.
type imageChunk struct {
	present [chunkBlocks / 64]uint64
	data    [chunkBlocks * BlockBytes]byte
}

// imageStore is a chunked arena over counter-block (metadata) images.
type imageStore struct {
	n        uint64
	chunks   []*imageChunk
	resident int
}

// zeroImage is the shared all-zero image returned for absent metadata
// blocks. Callers of Load must treat the result as read-only.
var zeroImage [BlockBytes]byte

func newImageStore(n uint64) *imageStore {
	return &imageStore{n: n, chunks: make([]*imageChunk, (n+chunkBlocks-1)/chunkBlocks)}
}

// Len returns the number of resident images.
func (s *imageStore) Len() int { return s.resident }

// Present reports whether image midx has been stored.
func (s *imageStore) Present(midx uint64) bool {
	c := s.chunks[midx/chunkBlocks]
	i := midx % chunkBlocks
	return c != nil && c.present[i/64]>>(i%64)&1 == 1
}

// Load returns the 64-byte image of metadata block midx, or the shared
// all-zero image if it was never stored. The result is read-only.
func (s *imageStore) Load(midx uint64) []byte {
	c := s.chunks[midx/chunkBlocks]
	if c == nil {
		return zeroImage[:]
	}
	i := midx % chunkBlocks
	if c.present[i/64]>>(i%64)&1 == 0 {
		return zeroImage[:]
	}
	return c.data[i*BlockBytes : (i+1)*BlockBytes : (i+1)*BlockBytes]
}

// Store marks midx resident and returns its writable 64-byte arena slice.
func (s *imageStore) Store(midx uint64) []byte {
	ci := midx / chunkBlocks
	c := s.chunks[ci]
	if c == nil {
		c = new(imageChunk)
		s.chunks[ci] = c
	}
	i := midx % chunkBlocks
	if c.present[i/64]>>(i%64)&1 == 0 {
		c.present[i/64] |= 1 << (i % 64)
		s.resident++
	}
	return c.data[i*BlockBytes : (i+1)*BlockBytes : (i+1)*BlockBytes]
}

// forEach visits every resident image in ascending order.
func (s *imageStore) forEach(fn func(midx uint64, img []byte)) {
	for ci, c := range s.chunks {
		if c == nil {
			continue
		}
		base := uint64(ci) * chunkBlocks
		for w, words := range c.present {
			for words != 0 {
				i := uint64(w)*64 + uint64(bits.TrailingZeros64(words))
				words &= words - 1
				fn(base+i, c.data[i*BlockBytes:(i+1)*BlockBytes:(i+1)*BlockBytes])
			}
		}
	}
}
