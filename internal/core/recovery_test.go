package core

import (
	"bytes"
	"errors"
	"testing"

	"authmem/internal/ctr"
	"authmem/internal/tree"
)

// TestRecoverMetadataRepair: a counter-block fault is repairable because
// the scheme state machine is on-chip. ReadRecover must rebuild the image
// and the tree and return correct plaintext with no retries.
func TestRecoverMetadataRepair(t *testing.T) {
	for _, cfg := range allDesignPoints() {
		t.Run(cfg.Scheme.String()+"/"+cfg.Placement.String(), func(t *testing.T) {
			e := newEngine(t, cfg)
			pt := block(42)
			if err := e.Write(0, pt); err != nil {
				t.Fatal(err)
			}
			midx := e.MetadataIndex(0)
			if err := e.TamperCounterBlock(midx, 13); err != nil {
				t.Fatal(err)
			}
			// Plain Read must fail at the counter stage.
			var ie *IntegrityError
			if _, err := e.Read(0, make([]byte, BlockBytes)); !errors.As(err, &ie) || ie.Stage != StageCounter {
				t.Fatalf("tampered counter block: got %v, want counter-stage IntegrityError", err)
			}
			dst := make([]byte, BlockBytes)
			ri, err := e.ReadRecover(0, dst)
			if err != nil {
				t.Fatalf("ReadRecover: %v", err)
			}
			if !ri.MetadataRepaired || ri.Retries != 0 || ri.Quarantined {
				t.Fatalf("unexpected recovery shape: %+v", ri)
			}
			if !bytes.Equal(dst, pt) {
				t.Fatal("recovered plaintext mismatch")
			}
			if e.Stats().MetadataRepairs != 1 {
				t.Fatalf("MetadataRepairs = %d, want 1", e.Stats().MetadataRepairs)
			}
			// Subsequent plain reads work again.
			if _, err := e.Read(0, dst); err != nil {
				t.Fatalf("read after repair: %v", err)
			}
		})
	}
}

// TestRecoverTreeNodeRepair: an off-chip tree node fault is likewise
// repairable by rebuilding the tree from the (re-derived) counter images.
func TestRecoverTreeNodeRepair(t *testing.T) {
	e := newEngine(t, smallCfg(ctr.Delta, MACInECC))
	pt := block(7)
	if err := e.Write(0, pt); err != nil {
		t.Fatal(err)
	}
	if e.tr.OffChipLevels() == 0 {
		t.Skip("tree fits on chip")
	}
	leaf := e.metaLeaf(e.MetadataIndex(0))
	id := tree.NodeID{Level: 0, Index: leaf / 8}
	if err := e.TamperTreeNode(id, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Read(0, make([]byte, BlockBytes)); err == nil {
		t.Fatal("tampered tree node not detected")
	}
	dst := make([]byte, BlockBytes)
	ri, err := e.ReadRecover(0, dst)
	if err != nil {
		t.Fatalf("ReadRecover: %v", err)
	}
	if !ri.MetadataRepaired {
		t.Fatalf("expected metadata repair, got %+v", ri)
	}
	if !bytes.Equal(dst, pt) {
		t.Fatal("recovered plaintext mismatch")
	}
}

// TestRecoverTransientRetry: a data-plane fault that clears on re-read
// (transient bus fault) is recovered by the bounded retry path.
func TestRecoverTransientRetry(t *testing.T) {
	for _, cfg := range allDesignPoints() {
		t.Run(cfg.Scheme.String()+"/"+cfg.Placement.String(), func(t *testing.T) {
			e := newEngine(t, cfg)
			pt := block(3)
			if err := e.Write(0, pt); err != nil {
				t.Fatal(err)
			}
			// A burst beyond any correction budget.
			for bit := 0; bit < 40; bit++ {
				if err := e.TamperCiphertext(0, bit); err != nil {
					t.Fatal(err)
				}
			}
			// The retry hook models the re-read clearing the fault.
			cleared := false
			e.SetRetryHook(func(blk uint64) {
				if cleared {
					return
				}
				cleared = true
				for bit := 0; bit < 40; bit++ {
					if err := e.TamperCiphertext(0, bit); err != nil {
						t.Fatal(err)
					}
				}
			})
			dst := make([]byte, BlockBytes)
			ri, err := e.ReadRecover(0, dst)
			if err != nil {
				t.Fatalf("ReadRecover: %v", err)
			}
			if !ri.RetryRecovered || ri.Retries != 1 {
				t.Fatalf("unexpected recovery shape: %+v", ri)
			}
			if !bytes.Equal(dst, pt) {
				t.Fatal("recovered plaintext mismatch")
			}
			st := e.Stats()
			if st.RetriedReads != 1 || st.RetryRecoveries != 1 {
				t.Fatalf("retry stats = %d/%d, want 1/1", st.RetriedReads, st.RetryRecoveries)
			}
		})
	}
}

// TestRecoverQuarantine: a persistent uncorrectable fault exhausts the
// policy, quarantines the block, and further reads fail fast until a fresh
// write releases it. This is the loud-failure guarantee: data is lost, but
// never silently wrong.
func TestRecoverQuarantine(t *testing.T) {
	e := newEngine(t, smallCfg(ctr.Delta, MACInECC))
	pt := block(9)
	if err := e.Write(128, pt); err != nil {
		t.Fatal(err)
	}
	for bit := 0; bit < 40; bit++ {
		if err := e.TamperCiphertext(128, bit); err != nil {
			t.Fatal(err)
		}
	}
	dst := make([]byte, BlockBytes)
	ri, err := e.ReadRecover(128, dst)
	if err == nil {
		t.Fatal("uncorrectable fault recovered without data")
	}
	if !ri.Quarantined || ri.Retries != e.RecoveryPolicy().MaxRetries {
		t.Fatalf("unexpected recovery shape: %+v", ri)
	}
	if !e.Quarantined(128) {
		t.Fatal("block not quarantined")
	}
	if got := e.QuarantineList(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("QuarantineList = %v, want [2]", got)
	}

	// Further reads fail fast with QuarantineError (both paths).
	var qe *QuarantineError
	if _, err := e.Read(128, dst); !errors.As(err, &qe) {
		t.Fatalf("read of quarantined block: got %v, want QuarantineError", err)
	}
	if _, err := e.ReadRecover(128, dst); !errors.As(err, &qe) {
		t.Fatalf("ReadRecover of quarantined block: got %v, want QuarantineError", err)
	}
	if e.Stats().QuarantineRefusals < 2 {
		t.Fatalf("QuarantineRefusals = %d, want >= 2", e.Stats().QuarantineRefusals)
	}

	// A fresh write releases the quarantine and reads verify again.
	pt2 := block(10)
	if err := e.Write(128, pt2); err != nil {
		t.Fatal(err)
	}
	if e.Quarantined(128) {
		t.Fatal("write did not release quarantine")
	}
	if _, err := e.Read(128, dst); err != nil {
		t.Fatalf("read after rewrite: %v", err)
	}
	if !bytes.Equal(dst, pt2) {
		t.Fatal("plaintext mismatch after rewrite")
	}
}

// TestRecoverPolicyDisabled: MaxRetries=0 and RepairMetadata=false make
// ReadRecover equivalent to Read plus quarantine.
func TestRecoverPolicyDisabled(t *testing.T) {
	e := newEngine(t, smallCfg(ctr.Split, MACInline))
	if err := e.Write(0, block(1)); err != nil {
		t.Fatal(err)
	}
	e.SetRecoveryPolicy(RecoveryPolicy{})
	if err := e.TamperCounterBlock(e.MetadataIndex(0), 3); err != nil {
		t.Fatal(err)
	}
	ri, err := e.ReadRecover(0, make([]byte, BlockBytes))
	if err == nil {
		t.Fatal("recovered with policy disabled")
	}
	if ri.MetadataRepaired || ri.Retries != 0 || !ri.Quarantined {
		t.Fatalf("unexpected recovery shape: %+v", ri)
	}
}

// TestReencryptSweepQuarantinesUnverifiable: the group re-encryption sweep
// must never launder a corrupted block into freshly-MACed ciphertext. A
// block corrupted beyond the budget before the sweep must be quarantined
// (or at minimum keep failing verification) after it — not read back as
// garbage with a valid MAC.
func TestReencryptSweepQuarantinesUnverifiable(t *testing.T) {
	for _, cfg := range allDesignPoints() {
		if cfg.Scheme != ctr.Delta && cfg.Scheme != ctr.DualLength {
			continue // only these schemes re-encrypt groups
		}
		t.Run(cfg.Scheme.String()+"/"+cfg.Placement.String(), func(t *testing.T) {
			e := newEngine(t, cfg)
			victim := uint64(5) // same group as block 0 (GroupBlocks=64)
			if err := e.Write(victim*BlockBytes, block(11)); err != nil {
				t.Fatal(err)
			}
			for bit := 0; bit < 40; bit++ {
				if err := e.TamperCiphertext(victim*BlockBytes, bit); err != nil {
					t.Fatal(err)
				}
			}
			// Hammer block 0 until the group re-encrypts at least once.
			pt := block(12)
			before := e.Stats().GroupReencrypts
			for i := 0; i < 200_000 && e.Stats().GroupReencrypts == before; i++ {
				if err := e.Write(0, pt); err != nil {
					t.Fatal(err)
				}
			}
			if e.Stats().GroupReencrypts == before {
				t.Skip("scheme never re-encrypted under this workload")
			}
			// The victim must NOT read back as valid garbage.
			dst := make([]byte, BlockBytes)
			_, err := e.Read(victim*BlockBytes, dst)
			if err == nil {
				t.Fatal("corrupted block re-sealed with a valid MAC by the sweep (silent corruption)")
			}
			if !e.Quarantined(victim * BlockBytes) {
				t.Fatal("sweep did not quarantine the unverifiable block")
			}
			// Block 0 itself is fine throughout.
			if _, err := e.Read(0, dst); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(dst, pt) {
				t.Fatal("survivor block corrupted by sweep")
			}
		})
	}
}
