package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"authmem/internal/ctr"
)

// This file walks the paper's §2 threat taxonomy end to end against the
// functional engine: snooping (confidentiality), spoofing, splicing, and
// replay. Replay is covered in engine_test.go and integration_test.go.

// TestConfidentialityNoTwoTimePad: the core counter-mode invariant. Writing
// the same plaintext twice to the same block, or to two different blocks,
// must produce unrelated ciphertexts — otherwise XOR of ciphertexts leaks
// XOR of plaintexts to a bus snooper.
func TestConfidentialityNoTwoTimePad(t *testing.T) {
	e := newEngine(t, smallCfg(ctr.Delta, MACInECC))
	pt := block(7)

	if err := e.Write(0, pt); err != nil {
		t.Fatal(err)
	}
	first := *(*[BlockBytes]byte)(e.store.Ciphertext(0))
	if err := e.Write(0, pt); err != nil {
		t.Fatal(err)
	}
	second := *(*[BlockBytes]byte)(e.store.Ciphertext(0))
	if first == second {
		t.Fatal("same ciphertext for two writes of one plaintext (pad reuse)")
	}

	if err := e.Write(64, pt); err != nil {
		t.Fatal(err)
	}
	other := *(*[BlockBytes]byte)(e.store.Ciphertext(1))
	if other == second {
		t.Fatal("same ciphertext at two addresses (address not in the pad)")
	}

	// The XOR of the two ciphertexts must not collapse to the XOR of the
	// plaintexts (zero here, same plaintext): i.e. pads differ in nearly
	// every byte.
	equalBytes := 0
	for i := range first {
		if first[i] == second[i] {
			equalBytes++
		}
	}
	if equalBytes > 8 {
		t.Fatalf("pads overlap in %d/64 bytes", equalBytes)
	}
}

// TestConfidentialityCiphertextUnbiased: a low-entropy plaintext (all
// zeros) must still produce ciphertext with roughly balanced bits.
func TestConfidentialityCiphertextUnbiased(t *testing.T) {
	e := newEngine(t, smallCfg(ctr.Delta, MACInECC))
	zero := make([]byte, BlockBytes)
	var ones, total int
	for i := uint64(0); i < 256; i++ {
		if err := e.Write(i*BlockBytes, zero); err != nil {
			t.Fatal(err)
		}
		ct := e.store.Ciphertext(i)
		for _, b := range ct {
			for bit := 0; bit < 8; bit++ {
				if b>>uint(bit)&1 == 1 {
					ones++
				}
				total++
			}
		}
	}
	frac := float64(ones) / float64(total)
	if frac < 0.48 || frac > 0.52 {
		t.Fatalf("ciphertext bit balance %.4f for zero plaintext", frac)
	}
}

// TestSpoofingRejected: the attacker overwrites a block with chosen bytes
// and its ECC lane with a guess. Without the key, the forgery cannot
// verify.
func TestSpoofingRejected(t *testing.T) {
	for _, placement := range []MACPlacement{MACInline, MACInECC} {
		e := newEngine(t, smallCfg(ctr.Delta, placement))
		if err := e.Write(0, block(8)); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(44))
		// Chosen ciphertext...
		forged := e.store.Ciphertext(0)
		rng.Read(forged)
		// ...with a random tag guess.
		if placement == MACInECC {
			e.store.SetMeta(0, e.store.Meta(0)^0xDEADBEEF)
		} else {
			e.store.SetMeta(0, e.store.Meta(0)^0xDEADBEEF)
		}
		dst := make([]byte, BlockBytes)
		var ie *IntegrityError
		if _, err := e.Read(0, dst); !errors.As(err, &ie) {
			t.Fatalf("%s: spoofed block verified: %v", placement, err)
		}
	}
}

// TestSplicingRejected: moving a valid (ciphertext, MAC) pair to a
// different address must fail for every scheme and placement, because the
// MAC binds the physical address.
func TestSplicingRejected(t *testing.T) {
	for _, cfg := range allDesignPoints() {
		name := cfg.Scheme.String() + "/" + cfg.Placement.String()
		e := newEngine(t, cfg)
		// Source and target with identical plaintext AND identical
		// counters (both written once), so only the address differs —
		// the hardest splicing variant.
		pt := block(9)
		if err := e.Write(0, pt); err != nil {
			t.Fatal(err)
		}
		if err := e.Write(64, pt); err != nil {
			t.Fatal(err)
		}
		snap, err := e.Snapshot(0)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Splice(snap, 64); err != nil {
			t.Fatal(err)
		}
		dst := make([]byte, BlockBytes)
		var ie *IntegrityError
		if _, err := e.Read(64, dst); !errors.As(err, &ie) {
			t.Fatalf("%s: spliced block verified: %v", name, err)
		}
		// The source block is untouched and still reads fine.
		if _, err := e.Read(0, dst); err != nil {
			t.Fatalf("%s: source block broken: %v", name, err)
		}
		if !bytes.Equal(dst, pt) {
			t.Fatalf("%s: source data wrong", name)
		}
	}
}

// TestSplicingAcrossGroups moves a block into a different block-group
// (different counter block entirely).
func TestSplicingAcrossGroups(t *testing.T) {
	e := newEngine(t, smallCfg(ctr.Delta, MACInECC))
	if err := e.Write(0, block(10)); err != nil {
		t.Fatal(err)
	}
	target := uint64(ctr.GroupBlocks) * BlockBytes // first block of group 1
	if err := e.Write(target, block(11)); err != nil {
		t.Fatal(err)
	}
	snap, err := e.Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Splice(snap, target); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, BlockBytes)
	if _, err := e.Read(target, dst); err == nil {
		t.Fatal("cross-group splice verified")
	}
}

func TestSpliceValidation(t *testing.T) {
	e := newEngine(t, smallCfg(ctr.Delta, MACInECC))
	snap, err := e.Snapshot(0) // fresh block: no data
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Splice(snap, 64); err == nil {
		t.Fatal("splicing an empty snapshot should fail")
	}
	if err := e.Write(0, block(12)); err != nil {
		t.Fatal(err)
	}
	snap, err = e.Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Splice(snap, 13); err == nil {
		t.Fatal("unaligned target should fail")
	}
}
