package core

import (
	"fmt"

	"authmem/internal/cache"
	"authmem/internal/ctr"
	"authmem/internal/dram"
)

// Timing constants for on-chip operations, in CPU cycles.
const (
	// MetadataCacheHitCycles is the metadata-cache (SRAM) hit latency.
	MetadataCacheHitCycles = 2
	// MACCheckCycles covers the pipelined GF-multiply MAC check; the
	// paper (and SGX) assume single-cycle multipliers, so the check adds
	// a couple of pipeline stages, not a recomputation stall.
	MACCheckCycles = 2
	// DecryptCycles is the final keystream XOR; pad generation overlaps
	// the DRAM fetch, as in all counter-mode engines (the whole point of
	// counter mode for memory).
	DecryptCycles = 1
)

// TimingModel prices reads and writebacks of a secure memory controller
// design point against a DDR3 timing model. It shares the counter-scheme
// state machines with the functional engine, so Table 2's re-encryption
// events and Figure 8's latency effects come from one implementation.
type TimingModel struct {
	cfg    Config
	scheme ctr.Scheme
	geom   treeGeometry
	meta   *cache.Cache
	mem    *dram.Memory

	// DecodeCycles is the counter-decode latency added on metadata
	// fetches; defaults to the scheme's hardware cost (2 cycles for
	// delta schemes, §5.3) and is exported for the ablation bench.
	DecodeCycles int
	// ChargeReencryptTraffic controls whether group re-encryptions issue
	// their background DRAM traffic (64 reads + 64 writes + metadata).
	ChargeReencryptTraffic bool
	// OverflowBufferGroups is the depth of Figure 7's overflow buffer:
	// how many group re-encryptions may be pending in the background
	// engine before the triggering write must stall. 0 means unbounded.
	OverflowBufferGroups int

	// reencBusyUntil is when the background re-encryption engine frees
	// up; pendingDone holds the completion times of queued groups.
	reencBusyUntil uint64
	pendingDone    []uint64
	// reencStall is set by the overflow hook when the buffer was full,
	// for WriteBack to apply to the triggering write.
	reencStall uint64

	// Address-space bases for metadata traffic.
	ctrBase  uint64
	treeBase uint64
	macBase  uint64

	dataTree   bool
	dataBlocks uint64

	now   uint64 // current request time, visible to the re-encrypt hook
	stats TimingStats
}

// TimingStats classifies every DRAM transaction the controller issued.
type TimingStats struct {
	DataReads     uint64
	DataWrites    uint64
	CounterReads  uint64
	TreeReads     uint64
	MACReads      uint64
	MetaWrites    uint64 // metadata-cache dirty evictions
	ReencryptOps  uint64 // group re-encryptions charged
	ReencryptRead uint64
	ReencryptWrit uint64
	// ReencStallCycles accumulates cycles writes spent waiting for a free
	// overflow-buffer slot (Figure 7's back-pressure path).
	ReencStallCycles uint64
	// MaxReencBacklog is the deepest the overflow buffer ever got.
	MaxReencBacklog int
}

// Transactions returns the total DRAM transaction count.
func (s TimingStats) Transactions() uint64 {
	return s.DataReads + s.DataWrites + s.CounterReads + s.TreeReads +
		s.MACReads + s.MetaWrites + s.ReencryptRead + s.ReencryptWrit
}

// treeGeometry is the integrity tree's shape without its cryptography —
// all the timing model needs.
type treeGeometry struct {
	counts []uint64 // node counts per level, bottom-up; last is on-chip
}

func newTreeGeometry(leaves uint64, onChipBytes int) treeGeometry {
	var g treeGeometry
	onChip := uint64(onChipBytes / 64)
	n := leaves
	for {
		n = (n + 7) / 8
		g.counts = append(g.counts, n)
		if n <= onChip {
			return g
		}
	}
}

// offChipLevels is the number of node levels stored in DRAM.
func (g treeGeometry) offChipLevels() int { return len(g.counts) - 1 }

// offChipNodes is the total off-chip node count.
func (g treeGeometry) offChipNodes() uint64 {
	var t uint64
	for _, c := range g.counts[:len(g.counts)-1] {
		t += c
	}
	return t
}

// path appends the flat off-chip node indices on a leaf's root path to dst.
func (g treeGeometry) path(leaf uint64, dst []uint64) []uint64 {
	idx := leaf
	var base uint64
	for k := 0; k < g.offChipLevels(); k++ {
		idx /= 8
		dst = append(dst, base+idx)
		base += g.counts[k]
	}
	return dst
}

// NewTimingModel builds a timing model over the given DRAM.
func NewTimingModel(cfg Config, mem *dram.Memory) (*TimingModel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if mem == nil {
		return nil, fmt.Errorf("core: nil DRAM")
	}
	t := &TimingModel{
		cfg:                    cfg,
		mem:                    mem,
		ChargeReencryptTraffic: true,
		OverflowBufferGroups:   4,
	}
	if cfg.DisableEncryption {
		return t, nil
	}
	scheme, err := ctr.NewScheme(cfg.Scheme)
	if err != nil {
		return nil, err
	}
	t.scheme = scheme
	scheme.OnReencrypt(t.onReencrypt)

	if cfg.Scheme == ctr.Delta || cfg.Scheme == ctr.DualLength {
		t.DecodeCycles = ctr.DecodeCycles
	}

	t.meta, err = cache.New(cache.Config{
		SizeBytes: cfg.MetadataCacheBytes,
		LineBytes: BlockBytes,
		Ways:      cfg.MetadataCacheWays,
	})
	if err != nil {
		return nil, err
	}

	metaBlocks := scheme.MetadataBlocks(cfg.DataBlocks())
	leaves := metaBlocks
	if cfg.DataTree {
		t.dataTree = true
		t.dataBlocks = cfg.DataBlocks()
		leaves += t.dataBlocks
	}
	t.geom = newTreeGeometry(leaves, cfg.OnChipTreeBytes)

	t.ctrBase = cfg.RegionBytes
	t.treeBase = t.ctrBase + metaBlocks*BlockBytes
	t.macBase = t.treeBase + t.geom.offChipNodes()*BlockBytes
	return t, nil
}

// Scheme returns the live counter scheme (for event stats).
func (t *TimingModel) Scheme() ctr.Scheme { return t.scheme }

// DRAM exposes the underlying memory timing model (for latency and
// row-buffer statistics).
func (t *TimingModel) DRAM() *dram.Memory { return t.mem }

// MetadataCacheStats returns the counter/MAC cache's hit statistics.
func (t *TimingModel) MetadataCacheStats() cache.Stats {
	if t.meta == nil {
		return cache.Stats{}
	}
	return t.meta.Stats()
}

// Stats returns the DRAM transaction classification.
func (t *TimingModel) Stats() TimingStats { return t.stats }

// OffChipTreeLevels reports the modeled tree depth (node levels in DRAM).
func (t *TimingModel) OffChipTreeLevels() int {
	if t.cfg.DisableEncryption {
		return 0
	}
	return t.geom.offChipLevels()
}

// metaAccess touches the metadata cache and issues DRAM traffic on a miss,
// returning when the line is available. Dirty evictions are written back
// (fire and forget).
func (t *TimingModel) metaAccess(now, addr uint64, write bool, class *uint64) uint64 {
	res := t.meta.Access(addr, write)
	if res.Evicted && res.EvictedDirty {
		t.stats.MetaWrites++
		t.mem.Access(now, res.EvictedAddr, true)
	}
	if res.Hit {
		return now + MetadataCacheHitCycles
	}
	*class++
	return t.mem.Access(now, addr, false)
}

// fetchCounter returns when the block's decoded counter is available,
// walking the integrity tree on a metadata-cache miss. On a hit, the cached
// counter is already verified (standard BMT optimization: cached metadata
// is inside the trust boundary).
func (t *TimingModel) fetchCounter(now, blk uint64, forWrite bool) uint64 {
	midx := t.scheme.MetadataBlock(blk)
	addr := t.ctrBase + midx*BlockBytes

	res := t.meta.Access(addr, forWrite)
	if res.Evicted && res.EvictedDirty {
		t.stats.MetaWrites++
		t.mem.Access(now, res.EvictedAddr, true)
	}
	if res.Hit {
		return now + MetadataCacheHitCycles + uint64(t.DecodeCycles)
	}
	t.stats.CounterReads++
	ready := t.mem.Access(now, addr, false)

	if done := t.walkTree(now, t.metaLeaf(midx), forWrite); done > ready {
		ready = done
	}
	return ready + uint64(t.DecodeCycles)
}

// metaLeaf maps a metadata block to its tree leaf (data blocks come first
// under the classic data-tree design).
func (t *TimingModel) metaLeaf(midx uint64) uint64 {
	if t.dataTree {
		return t.dataBlocks + midx
	}
	return midx
}

// walkTree fetches a leaf's path nodes until one is already cached
// (trusted). Fetches are issued in parallel — the path is known from the
// address — so completion is the max, with bus contention providing the
// serialization pressure.
func (t *TimingModel) walkTree(now, leaf uint64, forWrite bool) uint64 {
	var ready uint64
	var pathBuf [8]uint64
	for _, flat := range t.geom.path(leaf, pathBuf[:0]) {
		nodeAddr := t.treeBase + flat*BlockBytes
		hit := t.meta.Probe(nodeAddr)
		nres := t.meta.Access(nodeAddr, forWrite)
		if nres.Evicted && nres.EvictedDirty {
			t.stats.MetaWrites++
			t.mem.Access(now, nres.EvictedAddr, true)
		}
		if hit {
			break
		}
		t.stats.TreeReads++
		if done := t.mem.Access(now, nodeAddr, false); done > ready {
			ready = done
		}
	}
	return ready
}

// ReadMiss prices an LLC read miss beginning at CPU cycle now and returns
// the cycle at which decrypted, verified data is available.
func (t *TimingModel) ReadMiss(now, addr uint64) uint64 {
	if t.cfg.DisableEncryption {
		return t.mem.Access(now, addr, false)
	}
	t.now = now
	blk := addr / BlockBytes

	t.stats.DataReads++
	dataDone := t.mem.Access(now, addr, false)

	ctrReady := t.fetchCounter(now, blk, false)
	if t.dataTree {
		// Classic design: verifying the data block itself needs its
		// tree path.
		if done := t.walkTree(now, blk, false); done > ctrReady {
			ctrReady = done
		}
	}

	var macReady uint64
	if t.cfg.Placement == MACInECC {
		// Figure 2: the tag rides the ECC lanes of the data burst.
		macReady = dataDone
	} else {
		macAddr := t.macBase + (blk/8)*BlockBytes
		macReady = t.metaAccess(now, macAddr, false, &t.stats.MACReads)
	}

	done := dataDone
	if ctrReady > done {
		done = ctrReady
	}
	if macReady > done {
		done = macReady
	}
	return done + MACCheckCycles + DecryptCycles
}

// WriteBack prices a dirty-line eviction from the LLC: the counter
// increments, the line is encrypted and written, metadata is dirtied in the
// cache, and any group re-encryption issues its background traffic.
// The returned cycle is when the write completes at DRAM (the core does not
// stall on it).
func (t *TimingModel) WriteBack(now, addr uint64) uint64 {
	if t.cfg.DisableEncryption {
		return t.mem.Access(now, addr, true)
	}
	t.now = now
	blk := addr / BlockBytes

	// Counter read-modify-write: the metadata block must be resident.
	t.fetchCounter(now, blk, true)
	if t.dataTree {
		// The data block's tree path is dirtied by the write.
		t.walkTree(now, blk, true)
	}
	t.reencStall = 0
	t.scheme.Touch(blk)
	if t.reencStall > now {
		// The overflow buffer was full: the write waited for the
		// background engine to free a slot (Figure 7).
		t.stats.ReencStallCycles += t.reencStall - now
		now = t.reencStall
	}

	if t.cfg.Placement == MACInline {
		// The MAC block is read-modified too.
		macAddr := t.macBase + (blk/8)*BlockBytes
		t.metaAccess(now, macAddr, true, &t.stats.MACReads)
	}

	t.stats.DataWrites++
	return t.mem.Access(now, addr, true)
}

// onReencrypt models Figure 7's overflow path: the group is enqueued to the
// overflow buffer and the background re-encryption engine streams it
// through the crypto pipe (64 reads + 64 writes) when it gets to it. The
// core does not wait (§5.2) — unless the buffer is full, in which case the
// triggering write stalls until a slot frees.
func (t *TimingModel) onReencrypt(groupStart uint64, old []uint64, newCounter uint64) {
	t.stats.ReencryptOps++
	if !t.ChargeReencryptTraffic {
		return
	}
	// Drain completed groups from the pending window.
	pending := t.pendingDone[:0]
	for _, done := range t.pendingDone {
		if done > t.now {
			pending = append(pending, done)
		}
	}
	t.pendingDone = pending

	// Full buffer: the write stalls until the oldest pending group
	// completes (its done time is the smallest; entries are appended in
	// completion order because the engine is serial).
	enqueueAt := t.now
	if t.OverflowBufferGroups > 0 && len(t.pendingDone) >= t.OverflowBufferGroups {
		enqueueAt = t.pendingDone[0]
		t.reencStall = enqueueAt
		t.pendingDone = t.pendingDone[1:]
	}

	// The background engine is serial: this group starts when the engine
	// frees up.
	start := enqueueAt
	if t.reencBusyUntil > start {
		start = t.reencBusyUntil
	}
	var done uint64
	for j := range old {
		addr := (groupStart + uint64(j)) * BlockBytes
		if addr >= t.cfg.RegionBytes {
			break
		}
		rd := t.mem.Access(start, addr, false)
		wd := t.mem.Access(rd, addr, true)
		if wd > done {
			done = wd
		}
		t.stats.ReencryptRead++
		t.stats.ReencryptWrit++
	}
	t.reencBusyUntil = done
	t.pendingDone = append(t.pendingDone, done)
	if n := len(t.pendingDone); n > t.stats.MaxReencBacklog {
		t.stats.MaxReencBacklog = n
	}
}
