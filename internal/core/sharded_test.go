package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"authmem/internal/ctr"
)

func newSharded(t testing.TB, cfg Config, shards int) *ShardedEngine {
	t.Helper()
	s, err := NewShardedEngine(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestShardedValidate(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInECC)
	for _, n := range []int{1, 2, 4, 8} {
		if err := ValidateShards(cfg, n); err != nil {
			t.Errorf("%d shards rejected: %v", n, err)
		}
	}
	for _, n := range []int{0, -1, 3, 6, 1 << 20} {
		if err := ValidateShards(cfg, n); err == nil {
			t.Errorf("%d shards accepted", n)
		}
	}
	// A missing master key must be rejected before derivation turns it
	// into valid-looking per-shard keys.
	keyless := cfg
	keyless.KeyMaterial = nil
	for _, n := range []int{1, 4} {
		if err := ValidateShards(keyless, n); err == nil {
			t.Errorf("%d shards accepted without key material", n)
		}
	}
}

// TestShardedMatchesMonolithic drives identical random traffic through a
// 4-shard engine and a monolithic engine and requires identical plaintext
// reads everywhere.
func TestShardedMatchesMonolithic(t *testing.T) {
	for _, cfg := range allDesignPoints() {
		name := cfg.Scheme.String() + "/" + cfg.Placement.String()
		mono := newEngine(t, cfg)
		sh := newSharded(t, cfg, 4)

		rng := rand.New(rand.NewSource(7))
		blocks := cfg.DataBlocks()
		truth := make(map[uint64][]byte)
		for i := 0; i < 2000; i++ {
			blk := uint64(rng.Intn(int(blocks)))
			data := block(rng.Int63())
			addr := blk * BlockBytes
			if err := mono.Write(addr, data); err != nil {
				t.Fatalf("%s: mono write: %v", name, err)
			}
			if err := sh.Write(addr, data); err != nil {
				t.Fatalf("%s: sharded write: %v", name, err)
			}
			truth[addr] = data
		}
		a, b := make([]byte, BlockBytes), make([]byte, BlockBytes)
		for addr, want := range truth {
			if _, err := mono.Read(addr, a); err != nil {
				t.Fatalf("%s: mono read: %v", name, err)
			}
			if _, err := sh.Read(addr, b); err != nil {
				t.Fatalf("%s: sharded read %#x: %v", name, addr, err)
			}
			if !bytes.Equal(a, want) || !bytes.Equal(b, want) {
				t.Fatalf("%s: plaintext mismatch at %#x", name, addr)
			}
		}
	}
}

// TestShardedKeyIsolation: the same plaintext at the same shard-local
// address must encrypt differently in different shards — per-shard derived
// keys prevent keystream-pad sharing across shards.
func TestShardedKeyIsolation(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInECC)
	s := newSharded(t, cfg, 4)
	data := block(99)
	for i := 0; i < s.Shards(); i++ {
		if err := s.Write(uint64(i)*s.ShardBytes(), data); err != nil {
			t.Fatal(err)
		}
	}
	// Reach each shard's raw ciphertext via the locked escape hatch.
	cts := make([][]byte, s.Shards())
	for i := range cts {
		s.WithShard(i, func(eng *Engine) {
			snap, err := eng.Snapshot(0)
			if err != nil {
				t.Fatal(err)
			}
			cts[i] = append([]byte(nil), snap.ciphertext[:]...)
		})
	}
	for i := 1; i < len(cts); i++ {
		if bytes.Equal(cts[0], cts[i]) {
			t.Fatalf("shards 0 and %d share ciphertext for identical plaintext at identical local addresses", i)
		}
	}
	if bytes.Equal(ShardKeyMaterial(cfg.KeyMaterial, 4, 0), ShardKeyMaterial(cfg.KeyMaterial, 2, 0)) {
		t.Fatal("derived key ignores shard count")
	}
	if !bytes.Equal(ShardKeyMaterial(cfg.KeyMaterial, 1, 0), cfg.KeyMaterial) {
		t.Fatal("single-shard key must pass the master through for v1 compatibility")
	}
}

// TestShardedSpanIO reads and writes spans straddling shard boundaries.
func TestShardedSpanIO(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInECC)
	s := newSharded(t, cfg, 4)
	rng := rand.New(rand.NewSource(11))

	boundary := s.ShardBytes() // first shard boundary
	spans := []struct{ addr, n uint64 }{
		{boundary - BlockBytes, 2 * BlockBytes},                // straddles one boundary
		{boundary - 4*BlockBytes, 8 * BlockBytes},              // wider straddle
		{0, s.ShardBytes() * 2},                                // two whole shards
		{boundary*2 - BlockBytes, s.ShardBytes() + BlockBytes}, // crosses two boundaries
		{0, cfg.RegionBytes},                                   // the whole region
	}
	for _, sp := range spans {
		src := make([]byte, sp.n)
		rng.Read(src)
		if err := s.WriteBlocks(sp.addr, src); err != nil {
			t.Fatalf("write span [%#x,+%d): %v", sp.addr, sp.n, err)
		}
		dst := make([]byte, sp.n)
		if err := s.ReadBlocks(sp.addr, dst); err != nil {
			t.Fatalf("read span [%#x,+%d): %v", sp.addr, sp.n, err)
		}
		if !bytes.Equal(src, dst) {
			t.Fatalf("span [%#x,+%d) corrupted", sp.addr, sp.n)
		}
		// Single-block reads agree with the span write.
		one := make([]byte, BlockBytes)
		for off := uint64(0); off < sp.n; off += BlockBytes {
			if _, err := s.Read(sp.addr+off, one); err != nil {
				t.Fatalf("read %#x: %v", sp.addr+off, err)
			}
			if !bytes.Equal(one, src[off:off+BlockBytes]) {
				t.Fatalf("block %#x disagrees with span write", sp.addr+off)
			}
		}
	}

	// Bounds and alignment rejection.
	if err := s.ReadBlocks(cfg.RegionBytes-BlockBytes, make([]byte, 2*BlockBytes)); err == nil {
		t.Fatal("span past region end accepted")
	}
	if err := s.WriteBlocks(1, make([]byte, BlockBytes)); err == nil {
		t.Fatal("unaligned span accepted")
	}
	if err := s.ReadBlocks(0, make([]byte, 7)); err == nil {
		t.Fatal("non-block-multiple span accepted")
	}
}

// TestShardedErrorAddressesAreGlobal: integrity failures in a non-zero
// shard must surface global addresses, and the failing-span error must be
// the lowest-addressed failure.
func TestShardedErrorAddressesAreGlobal(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInECC)
	s := newSharded(t, cfg, 4)
	target := s.ShardBytes()*2 + 5*BlockBytes // inside shard 2
	if err := s.Write(target, block(1)); err != nil {
		t.Fatal(err)
	}
	// Three flips defeat the 2-bit ECC correction budget.
	for _, bit := range []int{12, 137, 300} {
		if err := s.TamperCiphertext(target, bit); err != nil {
			t.Fatal(err)
		}
	}
	_, err := s.Read(target, make([]byte, BlockBytes))
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("tampered read returned %v, want IntegrityError", err)
	}
	if ie.Addr != target {
		t.Fatalf("error address %#x, want global %#x", ie.Addr, target)
	}

	// A span covering the tampered block fails with that global address
	// even though the span starts in shard 1.
	start := s.ShardBytes() + 3*BlockBytes
	n := target - start + 4*BlockBytes
	for a := start; a < start+n; a += BlockBytes {
		if a != target {
			if err := s.Write(a, block(int64(a))); err != nil {
				t.Fatal(err)
			}
		}
	}
	err = s.ReadBlocks(start, make([]byte, n))
	if !errors.As(err, &ie) {
		t.Fatalf("span over tampered block returned %v", err)
	}
	if ie.Addr != target {
		t.Fatalf("span error address %#x, want %#x", ie.Addr, target)
	}
}

// TestShardedQuarantineGlobal: quarantine state routes through shards and
// lists global block indices; the empty list allocates nothing.
func TestShardedQuarantineGlobal(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInECC)
	s := newSharded(t, cfg, 4)
	s.SetRecoveryPolicy(RecoveryPolicy{MaxRetries: 1})

	if s.QuarantineList() != nil || s.QuarantineCount() != 0 {
		t.Fatal("fresh engine has quarantined blocks")
	}
	target := s.ShardBytes() * 3 // first block of shard 3
	if err := s.Write(target, block(2)); err != nil {
		t.Fatal(err)
	}
	for _, bit := range []int{3, 77, 411} {
		if err := s.TamperCiphertext(target, bit); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.ReadRecover(target, make([]byte, BlockBytes)); err == nil {
		t.Fatal("tampered ReadRecover succeeded")
	}
	if !s.Quarantined(target) {
		t.Fatal("block not quarantined after failed recovery")
	}
	want := target / BlockBytes
	list := s.QuarantineList()
	if len(list) != 1 || list[0] != want {
		t.Fatalf("quarantine list %v, want [%d]", list, want)
	}
	if s.QuarantineCount() != 1 {
		t.Fatalf("quarantine count %d, want 1", s.QuarantineCount())
	}
	var qe *QuarantineError
	_, err := s.ReadRecover(target, make([]byte, BlockBytes))
	if !errors.As(err, &qe) || qe.Addr != target {
		t.Fatalf("quarantined read: %v (want QuarantineError at %#x)", err, target)
	}
}

// TestShardedStatsMerge: per-shard stats merge into coherent totals.
func TestShardedStatsMerge(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInECC)
	s := newSharded(t, cfg, 4)
	const perShard = 50
	for i := 0; i < s.Shards(); i++ {
		base := uint64(i) * s.ShardBytes()
		for j := uint64(0); j < perShard; j++ {
			if err := s.Write(base+j*BlockBytes, block(int64(j))); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Read(base+j*BlockBytes, make([]byte, BlockBytes)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Written blocks are write-allocated into the block cache, so the reads
	// above hit it; fresh (never-written) blocks bypass it and exercise the
	// counter path instead.
	for i := 0; i < s.Shards(); i++ {
		fresh := uint64(i)*s.ShardBytes() + perShard*BlockBytes
		if _, err := s.Read(fresh, make([]byte, BlockBytes)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Writes != perShard*4 || st.Reads != (perShard+1)*4 {
		t.Fatalf("merged stats: %d writes %d reads, want %d/%d", st.Writes, st.Reads, perShard*4, (perShard+1)*4)
	}
	if st.DataCacheHits == 0 {
		t.Fatal("per-shard block caches saw no hits")
	}
	if st.MetaCacheHits+st.MetaCacheMisses == 0 {
		t.Fatal("per-shard counter caches saw no traffic")
	}
	if s.SchemeStats().Writes != perShard*4 {
		t.Fatalf("merged scheme stats: %d writes", s.SchemeStats().Writes)
	}
}

// TestShardedScrub: both scrub variants cover every resident block across
// all shards.
func TestShardedScrub(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInECC)
	cfg.CorrectBits = 1
	s := newSharded(t, cfg, 4)
	const n = 40
	for i := uint64(0); i < n; i++ {
		// Spread across shards.
		addr := (i%4)*s.ShardBytes() + (i/4)*BlockBytes
		if err := s.Write(addr, block(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	r, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if r.BlocksScanned != n {
		t.Fatalf("scrub scanned %d blocks, want %d", r.BlocksScanned, n)
	}
	pr, err := s.ParallelScrub()
	if err != nil {
		t.Fatal(err)
	}
	if pr.BlocksScanned != n {
		t.Fatalf("parallel scrub scanned %d blocks, want %d", pr.BlocksScanned, n)
	}
}

// shardedCampaign mirrors persistCampaign across the whole sharded region.
func shardedCampaign(t *testing.T, s *ShardedEngine) map[uint64][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(33))
	blocks := s.Config().DataBlocks()
	truth := make(map[uint64][]byte)
	for i := 0; i < 3000; i++ {
		blk := uint64(rng.Intn(int(blocks)))
		if i%3 == 0 {
			blk = uint64(rng.Intn(4)) * (blocks / 4) // hot head of each shard
		}
		data := block(rng.Int63())
		if err := s.Write(blk*BlockBytes, data); err != nil {
			t.Fatal(err)
		}
		truth[blk*BlockBytes] = data
	}
	return truth
}

func TestShardedPersistResumeRoundTrip(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInECC)
	for _, shards := range []int{1, 2, 4} {
		s := newSharded(t, cfg, shards)
		truth := shardedCampaign(t, s)

		var buf bytes.Buffer
		digest, err := s.Persist(&buf)
		if err != nil {
			t.Fatalf("%d shards: persist: %v", shards, err)
		}
		if digest != s.RootDigest() {
			t.Fatalf("%d shards: persist digest disagrees with live RootDigest", shards)
		}

		r, err := ResumeSharded(cfg, shards, bytes.NewReader(buf.Bytes()), &digest)
		if err != nil {
			t.Fatalf("%d shards: resume: %v", shards, err)
		}
		dst := make([]byte, BlockBytes)
		for addr, want := range truth {
			if _, err := r.Read(addr, dst); err != nil {
				t.Fatalf("%d shards: read %#x after resume: %v", shards, addr, err)
			}
			if !bytes.Equal(dst, want) {
				t.Fatalf("%d shards: block %#x corrupted across persist/resume", shards, addr)
			}
		}
		// The resumed engine keeps accepting traffic.
		if err := r.Write(0, block(555)); err != nil {
			t.Fatalf("%d shards: write after resume: %v", shards, err)
		}

		// Wrong combined root must be rejected.
		bad := digest
		bad[0] ^= 1
		if _, err := ResumeSharded(cfg, shards, bytes.NewReader(buf.Bytes()), &bad); err == nil {
			t.Fatalf("%d shards: resume accepted a wrong root digest", shards)
		}
		// Wrong shard count must be rejected.
		wrong := shards * 2
		if _, err := ResumeSharded(cfg, wrong, bytes.NewReader(buf.Bytes()), &digest); err == nil {
			t.Fatalf("image with %d shards resumed as %d", shards, wrong)
		}
	}
}

// TestShardedResumeV1Image: a monolithic v1 image resumes as a 1-shard
// sharded engine (and only as 1 shard).
func TestShardedResumeV1Image(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInECC)
	mono := newEngine(t, cfg)
	truth := persistCampaign(t, mono)

	var buf bytes.Buffer
	digest, err := mono.Persist(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ResumeSharded(cfg, 1, bytes.NewReader(buf.Bytes()), &digest)
	if err != nil {
		t.Fatalf("v1 image rejected by 1-shard resume: %v", err)
	}
	dst := make([]byte, BlockBytes)
	for addr, want := range truth {
		if _, err := s.Read(addr, dst); err != nil {
			t.Fatalf("read %#x: %v", addr, err)
		}
		if !bytes.Equal(dst, want) {
			t.Fatalf("block %#x corrupted", addr)
		}
	}
	if _, err := ResumeSharded(cfg, 2, bytes.NewReader(buf.Bytes()), &digest); err == nil {
		t.Fatal("v1 image accepted by a 2-shard resume")
	}
	// And the reverse direction: a 1-shard sharded Persist IS a v1 image.
	s2 := newSharded(t, cfg, 1)
	if err := s2.Write(0, block(9)); err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	d2, err := s2.Persist(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(cfg, bytes.NewReader(buf2.Bytes()), &d2); err != nil {
		t.Fatalf("1-shard image rejected by monolithic Resume: %v", err)
	}
}

// TestShardedConcurrentTraffic hammers all shards from parallel goroutines;
// run under -race this proves the per-shard locking is sound.
func TestShardedConcurrentTraffic(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInECC)
	s := newSharded(t, cfg, 4)
	const workers = 8
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			rng := rand.New(rand.NewSource(int64(w)))
			buf := make([]byte, BlockBytes)
			span := make([]byte, 4*BlockBytes)
			blocks := int(cfg.DataBlocks())
			for i := 0; i < 400; i++ {
				addr := uint64(rng.Intn(blocks)) * BlockBytes
				switch i % 3 {
				case 0:
					if err := s.Write(addr, block(rng.Int63())); err != nil {
						done <- err
						return
					}
				case 1:
					if _, err := s.Read(addr, buf); err != nil {
						done <- err
						return
					}
				default:
					if addr+uint64(len(span)) > cfg.RegionBytes {
						addr = cfg.RegionBytes - uint64(len(span))
					}
					if err := s.ReadBlocks(addr, span); err != nil {
						done <- err
						return
					}
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.IntegrityFailures != 0 {
		t.Fatalf("%d integrity failures under clean concurrent traffic", st.IntegrityFailures)
	}
}
