package core

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
	"sort"

	"authmem/internal/ctr"
	"authmem/internal/tree"
	"authmem/internal/wal"
)

// Incremental persistence: O(dirty) checkpoints instead of O(region).
//
// Engine.Persist serializes the whole image even when a handful of groups
// changed since the last checkpoint. This file applies the paper's delta
// idea to the durability plane: the engine keeps a group-granular dirty set
// (fed by the same commit points the write pipeline uses), and AppendDelta
// serializes only the dirty counter groups — each group's counter-block
// image, its resident data blocks, and their MAC/check storage — as sealed
// records in an append-only delta log (internal/wal), closing each epoch
// with a commit record that carries the post-epoch root digest.
//
// Trust model. The log lives on the same untrusted storage as the base
// image. Three layers keep replay honest:
//
//  1. The log's own chained HMAC seals (see internal/wal): torn tails are
//     cut with a typed verdict, and forged/reordered/spliced records fail
//     their seal — nothing unauthenticated ever reaches the apply path.
//  2. Every commit record seals the engine root digest at that epoch.
//     After applying an epoch's group records, replay recomputes the root
//     from the rebuilt tree and compares: a log that claims state the tree
//     does not hash to is rejected (rollback verdict), so a sealed-but-
//     inconsistent base+log pairing cannot resume silently.
//  3. The chain seed is the base snapshot's root digest, binding each log
//     to exactly the base it extends: replaying yesterday's log over
//     today's base (or vice versa) fails before any record applies.
//
// What remains out of reach from inside untrusted storage — exactly as
// with whole-image persist — is discarding a *suffix* of sealed epochs at
// a record boundary: indistinguishable from an honest crash. Callers close
// that hole by pinning the last root (or epoch count) in trusted storage
// and passing expectRoot, or checking RecoveryReport.EpochRoots against
// the pin (what cmd/memserved's sealed manifest does).

// Delta-record types (first payload byte).
const (
	deltaRecGroup  = 1 // one dirty group: counter image + resident blocks
	deltaRecCommit = 2 // epoch commit: sealed root digest
)

// deltaTracker is the engine's group-granular dirty set for incremental
// persistence: a bitset for membership plus an append list for iteration,
// marked at the two metadata commit points (commitMetadata, deferCommit) so
// every accepted write — single, batched, or re-encryption sweep — lands a
// group in the set.
type deltaTracker struct {
	bits  []uint64
	list  []uint64
	epoch uint64
	// scratch backs encodeGroupRecord between wal appends (the record is
	// copied into the log's own frame buffer before the next group).
	scratch []byte
}

func (t *deltaTracker) mark(midx uint64) {
	if t.bits[midx/64]>>(midx%64)&1 == 1 {
		return
	}
	t.bits[midx/64] |= 1 << (midx % 64)
	t.list = append(t.list, midx)
}

func (t *deltaTracker) reset() {
	for _, m := range t.list {
		t.bits[m/64] &^= 1 << (m % 64)
	}
	t.list = t.list[:0]
}

// EnableDeltaTracking turns on the dirty-group set behind AppendDelta.
// Call before traffic (or right after ResumeIncremental, which enables it
// automatically); groups written while tracking is off are not observed.
// A no-op when already enabled or with encryption disabled.
func (e *Engine) EnableDeltaTracking() {
	if e.cfg.DisableEncryption || e.delta != nil {
		return
	}
	n := e.scheme.MetadataBlocks(e.cfg.DataBlocks())
	e.delta = &deltaTracker{
		bits: make([]uint64, (n+63)/64),
		list: make([]uint64, 0, 64),
	}
}

// DeltaTrackingEnabled reports whether the dirty-group set is active.
func (e *Engine) DeltaTrackingEnabled() bool { return e.delta != nil }

// DirtyGroups returns the number of groups an AppendDelta would serialize
// right now (0 without tracking).
func (e *Engine) DirtyGroups() int {
	if e.delta == nil {
		return 0
	}
	return len(e.delta.list)
}

// DeltaStats reports what one AppendDelta epoch wrote.
type DeltaStats struct {
	// Groups is the number of dirty-group records appended.
	Groups int
	// Bytes is the log growth, framing included.
	Bytes int64
	// Epoch is the zero-based epoch number sealed into the commit record.
	Epoch uint64
	// Root is the root digest sealed into the commit record — the trusted
	// pin for this epoch.
	Root RootDigest
}

// walKeyMaterial derives the delta-log sealing key from the engine's key
// material. Sharded engines derive per-shard key material, so each shard's
// log seals under its own key and records cannot migrate between shards.
func (e *Engine) walKeyMaterial() []byte {
	h := sha256.New()
	h.Write([]byte("authmem/wal/seal/v1"))
	h.Write(e.cfg.KeyMaterial)
	return h.Sum(nil)
}

// NewDeltaWriter starts a fresh delta log on w, seeded with the engine's
// current root digest. The log extends exactly the state the engine holds
// now — persist the base image first, then open the log, and every
// AppendDelta epoch extends that base.
func (e *Engine) NewDeltaWriter(w io.Writer) (*wal.Writer, error) {
	if e.cfg.DisableEncryption {
		return nil, fmt.Errorf("core: no delta log with encryption disabled")
	}
	// A new log is a new epoch sequence: its first commit record must carry
	// epoch 0, whatever was appended to earlier logs (a checkpoint fold
	// opens a fresh log mid-life; the old one is dead the moment the new
	// base exists). The dirty set intentionally survives — groups dirtied
	// since the last append are covered by the new base, and re-serializing
	// them in the first epoch is merely redundant, never wrong.
	if e.delta != nil {
		e.delta.epoch = 0
	}
	seed := e.RootDigest()
	return wal.NewWriter(w, e.walKeyMaterial(), seed)
}

// metaSpan returns the contiguous data-block span [first, first+n) covered
// by metadata block midx: one 4KB group for the grouped schemes, one
// 8-counter block for the monolithic scheme.
func (e *Engine) metaSpan(midx uint64) (first, n uint64) {
	bpm := uint64(ctr.GroupBlocks)
	if e.cfg.Scheme == ctr.Monolithic {
		bpm = ctr.CountersPerMetadataBlock
	}
	first = midx * bpm
	n = bpm
	if rem := e.cfg.DataBlocks() - first; n > rem {
		n = rem
	}
	return first, n
}

// AppendDelta flushes deferred Merkle maintenance, serializes every dirty
// group as a sealed record on w, closes the epoch with a commit record
// carrying the post-epoch root digest, and clears the dirty set. An epoch
// with no dirty groups still writes its commit record (a sealed heartbeat);
// callers that want to skip empty epochs check DirtyGroups first.
func (e *Engine) AppendDelta(w *wal.Writer) (DeltaStats, error) {
	var st DeltaStats
	if e.cfg.DisableEncryption {
		return st, fmt.Errorf("core: nothing meaningful to persist with encryption disabled")
	}
	if e.delta == nil {
		return st, fmt.Errorf("core: delta tracking not enabled (call EnableDeltaTracking)")
	}
	// The log must only ever see flushed state: the commit record's root
	// covers every accepted write, and group images are re-packed from the
	// trusted scheme state machine by Flush before they are read here.
	if err := e.Flush(); err != nil {
		return st, err
	}
	start := w.Offset()

	// Ascending group order makes the log deterministic for a given dirty
	// set, like the full image's arena iteration order.
	groups := append([]uint64(nil), e.delta.list...)
	sort.Slice(groups, func(i, j int) bool { return groups[i] < groups[j] })
	for _, midx := range groups {
		if err := w.Append(e.encodeGroupRecord(midx)); err != nil {
			return st, err
		}
		st.Groups++
	}

	root := e.RootDigest()
	var commit [1 + 8 + sha256.Size]byte
	commit[0] = deltaRecCommit
	binary.LittleEndian.PutUint64(commit[1:9], e.delta.epoch)
	copy(commit[9:], root[:])
	if err := w.Append(commit[:]); err != nil {
		return st, err
	}

	st.Epoch = e.delta.epoch
	st.Root = root
	st.Bytes = w.Offset() - start
	e.delta.epoch++
	e.delta.reset()
	return st, nil
}

// encodeGroupRecord serializes one group's DRAM-visible state:
//
//	u8 type=1 | u64 midx | counter image [64] | u64 present bitmap |
//	per present block: ciphertext [64] | u64 metadata lane | check bytes
//
// The present bitmap covers the group's data-block span (at most 64 blocks,
// one word). Check bytes appear only under the inline-MAC placement, with
// the codec's stride.
func (e *Engine) encodeGroupRecord(midx uint64) []byte {
	first, n := e.metaSpan(midx)
	checkBytes := e.store.checkBytes
	var present uint64
	cnt := 0
	for j := uint64(0); j < n; j++ {
		if e.store.Present(first + j) {
			present |= 1 << j
			cnt++
		}
	}
	need := 1 + 8 + BlockBytes + 8 + cnt*(BlockBytes+8+checkBytes)
	if cap(e.delta.scratch) < need {
		e.delta.scratch = make([]byte, need)
	}
	buf := e.delta.scratch[:need]
	buf[0] = deltaRecGroup
	binary.LittleEndian.PutUint64(buf[1:9], midx)
	copy(buf[9:9+BlockBytes], e.images.Load(midx))
	binary.LittleEndian.PutUint64(buf[9+BlockBytes:], present)
	off := 9 + BlockBytes + 8
	for j := uint64(0); j < n; j++ {
		if present>>j&1 == 0 {
			continue
		}
		blk := first + j
		copy(buf[off:], e.store.Ciphertext(blk))
		off += BlockBytes
		binary.LittleEndian.PutUint64(buf[off:], e.store.Meta(blk))
		off += 8
		if checkBytes > 0 {
			copy(buf[off:], e.store.Check(blk))
			off += checkBytes
		}
	}
	return buf
}

// applyGroupRecord installs one sealed group record into the engine: data
// blocks into the arena, the counter image into the image store and the
// trusted scheme state machine, and the touched leaves into the tree. The
// record's seal has already verified; errors here mean the sealed content
// does not fit this engine's geometry — corruption of the pairing, never
// something to paper over.
func (e *Engine) applyGroupRecord(payload []byte, loader ctr.MetadataLoader) error {
	if len(payload) < 1+8+BlockBytes+8 {
		return fmt.Errorf("group record too short (%d bytes)", len(payload))
	}
	midx := binary.LittleEndian.Uint64(payload[1:9])
	if midx >= e.scheme.MetadataBlocks(e.cfg.DataBlocks()) {
		return fmt.Errorf("group record metadata block %d out of range", midx)
	}
	first, n := e.metaSpan(midx)
	img := payload[9 : 9+BlockBytes]
	present := binary.LittleEndian.Uint64(payload[9+BlockBytes:])
	if n < 64 && present>>n != 0 {
		return fmt.Errorf("group record %d marks blocks beyond its span", midx)
	}
	checkBytes := e.store.checkBytes
	cnt := bits.OnesCount64(present)
	if want := 1 + 8 + BlockBytes + 8 + cnt*(BlockBytes+8+checkBytes); len(payload) != want {
		return fmt.Errorf("group record %d is %d bytes, geometry says %d", midx, len(payload), want)
	}

	off := 9 + BlockBytes + 8
	for j := uint64(0); j < n; j++ {
		if present>>j&1 == 0 {
			continue
		}
		blk := first + j
		ct := e.store.Materialize(blk)
		copy(ct, payload[off:off+BlockBytes])
		off += BlockBytes
		e.store.SetMeta(blk, binary.LittleEndian.Uint64(payload[off:]))
		off += 8
		if checkBytes > 0 {
			copy(e.store.Check(blk), payload[off:off+checkBytes])
			off += checkBytes
		}
		if e.cfg.DataTree {
			if err := e.tr.UpdateLeafFast(blk, ct); err != nil {
				return err
			}
		}
	}

	copy(e.images.Store(midx), img)
	if err := loader.LoadMetadata(midx, [BlockBytes]byte(img)); err != nil {
		return fmt.Errorf("group record %d counter image undecodable: %w", midx, err)
	}
	return e.tr.UpdateLeafFast(e.metaLeaf(midx), img)
}

// RecoveryStatus classifies how an incremental resume ended.
type RecoveryStatus int

const (
	// RecoveryClean: the whole log replayed and every epoch's sealed root
	// matched the rebuilt tree.
	RecoveryClean RecoveryStatus = iota
	// RecoveryTruncated: a torn or damaged tail (or uncommitted trailing
	// group records) was cut at the last committed epoch. The engine is
	// valid at that epoch — the expected outcome of a crash.
	RecoveryTruncated
	// RecoveryRollback: authenticated-state mismatch — a sealed record
	// failed its chain seal, an epoch's sealed root did not match the
	// rebuilt tree, or the pinned expectRoot was not reached. The resume
	// is refused.
	RecoveryRollback
)

// String names the status.
func (s RecoveryStatus) String() string {
	switch s {
	case RecoveryClean:
		return "clean"
	case RecoveryTruncated:
		return "truncated"
	case RecoveryRollback:
		return "rollback-detected"
	default:
		return fmt.Sprintf("RecoveryStatus(%d)", int(s))
	}
}

// RecoveryReport is the typed verdict of an incremental resume.
type RecoveryReport struct {
	Status RecoveryStatus
	// Epochs is the number of committed epochs applied.
	Epochs int
	// Groups is the number of group records applied (committed epochs
	// only).
	Groups int
	// Dropped counts sealed records read but discarded because no commit
	// record followed them (the uncommitted tail of a crash).
	Dropped int
	// FailedAt is the log record index where replay stopped (-1 when the
	// whole log replayed).
	FailedAt int
	// Reason is a human-readable cause for non-clean statuses.
	Reason string
	// BaseRoot is the base snapshot's root digest (the log's chain seed).
	BaseRoot RootDigest
	// Root is the root digest after recovery: the last committed epoch's
	// sealed root, or BaseRoot when no epoch committed.
	Root RootDigest
	// EpochRoots holds every committed epoch's sealed root in order —
	// what a caller with a trusted (epoch, root) pin checks freshness
	// against.
	EpochRoots []RootDigest
}

// RecoveryError is returned when an incremental resume detects rollback or
// sealed-state corruption. It wraps the full report; callers match it with
// errors.As through every resume path, including sharded ones.
type RecoveryError struct {
	Report *RecoveryReport
}

// Error implements error.
func (e *RecoveryError) Error() string {
	return fmt.Sprintf("core: incremental resume %s at log record %d: %s",
		e.Report.Status, e.Report.FailedAt, e.Report.Reason)
}

// replayDelta replays a delta log into a freshly-resumed engine. Group
// records buffer until their epoch's commit record arrives, then apply as a
// unit and the rebuilt tree's root is checked against the commit's sealed
// root — so a crash mid-epoch rolls back to the previous commit, and a log
// whose sealed claims disagree with its own records is refused.
func (e *Engine) replayDelta(r io.Reader, rep *RecoveryReport) error {
	loader, ok := e.scheme.(ctr.MetadataLoader)
	if !ok {
		return fmt.Errorf("core: scheme %s cannot restore metadata", e.scheme.Name())
	}
	var pending [][]byte
	res, err := wal.Replay(r, e.walKeyMaterial(), rep.BaseRoot, func(seq uint64, payload []byte) error {
		switch payload[0] {
		case deltaRecGroup:
			pending = append(pending, append([]byte(nil), payload...))
			return nil
		case deltaRecCommit:
			if len(payload) != 1+8+sha256.Size {
				return fmt.Errorf("commit record is %d bytes", len(payload))
			}
			epoch := binary.LittleEndian.Uint64(payload[1:9])
			if epoch != uint64(rep.Epochs) {
				return fmt.Errorf("commit record claims epoch %d, log position says %d", epoch, rep.Epochs)
			}
			for _, p := range pending {
				if err := e.applyGroupRecord(p, loader); err != nil {
					return err
				}
			}
			root := e.RootDigest()
			if root != RootDigest(payload[9:]) {
				return fmt.Errorf("epoch %d sealed root does not match the rebuilt tree", epoch)
			}
			rep.Groups += len(pending)
			pending = pending[:0]
			rep.Epochs++
			rep.EpochRoots = append(rep.EpochRoots, root)
			rep.Root = root
			return nil
		default:
			return fmt.Errorf("unknown record type %d", payload[0])
		}
	})
	if err != nil {
		// A sealed record that fails to apply or contradicts its commit's
		// root: authenticated framing carrying inconsistent state. Refuse.
		rep.Status = RecoveryRollback
		rep.FailedAt = res.FailedAt
		rep.Reason = err.Error()
		return &RecoveryError{Report: rep}
	}
	switch res.Verdict {
	case wal.VerdictCorrupt:
		rep.Status = RecoveryRollback
		rep.FailedAt = res.FailedAt
		rep.Reason = res.Reason
		return &RecoveryError{Report: rep}
	case wal.VerdictTruncated:
		rep.Status = RecoveryTruncated
		rep.FailedAt = res.FailedAt
		rep.Reason = res.Reason
	}
	if len(pending) > 0 {
		// Sealed group records with no commit: the in-flight epoch of a
		// crash. They never applied, so the engine sits exactly at the
		// last committed epoch.
		rep.Dropped = len(pending)
		if rep.Status == RecoveryClean {
			rep.Status = RecoveryTruncated
			rep.FailedAt = res.Records
			rep.Reason = fmt.Sprintf("%d group records with no commit (in-flight epoch)", len(pending))
		}
	}
	return nil
}

// resumeDelta finishes an incremental resume for one engine: enables delta
// tracking (so the next AppendDelta observes post-resume writes) and
// replays the log when one is supplied.
func (e *Engine) resumeDelta(walR io.Reader) (*RecoveryReport, error) {
	e.EnableDeltaTracking()
	rep := &RecoveryReport{FailedAt: -1, BaseRoot: e.RootDigest()}
	rep.Root = rep.BaseRoot
	if walR == nil {
		return rep, nil
	}
	if err := e.replayDelta(walR, rep); err != nil {
		return rep, err
	}
	return rep, nil
}

// ResumeIncremental rebuilds an engine from a base image plus a delta log:
// the base resumes through the ordinary verified Resume path, then the log
// replays epoch by epoch to the newest record whose chained seal and sealed
// root digest verify. The report is the typed verdict — clean, truncated at
// the crash point (engine valid at the last committed epoch), or
// rollback-detected (resume refused with a *RecoveryError).
//
// walR may be nil to resume the base alone. If expectRoot is non-nil the
// *recovered* root must equal it: pin the Root of the last AppendDelta (or
// an epoch root from a sealed manifest) in trusted storage and a truncation
// attack that presents a shorter-but-valid log prefix is detected too.
func ResumeIncremental(cfg Config, base io.Reader, walR io.Reader, expectRoot *RootDigest) (*Engine, *RecoveryReport, error) {
	e, err := Resume(cfg, base, nil)
	if err != nil {
		return nil, nil, err
	}
	rep, err := e.resumeDelta(walR)
	if err != nil {
		return nil, rep, err
	}
	if expectRoot != nil && rep.Root != *expectRoot {
		rep.Status = RecoveryRollback
		rep.Reason = "recovered root does not match the pinned digest (rollback or truncated history)"
		return nil, rep, &RecoveryError{Report: rep}
	}
	return e, rep, nil
}

// Sharded incremental persistence: one delta log per shard, sealed under
// the shard's derived key, with the combined root (tree.CombineRoots over
// the per-shard recovered roots) as the single trusted attestation value.

// EnableDeltaTracking enables the dirty-group set on every shard.
func (s *ShardedEngine) EnableDeltaTracking() {
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.eng.EnableDeltaTracking()
		sh.mu.Unlock()
	}
}

// DirtyGroups sums the dirty groups pending across all shards.
func (s *ShardedEngine) DirtyGroups() int {
	total := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		total += sh.eng.DirtyGroups()
		sh.mu.Unlock()
	}
	return total
}

// NewShardDeltaWriter starts shard i's delta log on w, seeded with the
// shard's current root. Persist the sharded base image first, then open
// each shard's log.
func (s *ShardedEngine) NewShardDeltaWriter(i int, w io.Writer) (*wal.Writer, error) {
	if i < 0 || i >= len(s.shards) {
		return nil, fmt.Errorf("core: shard %d out of range [0,%d)", i, len(s.shards))
	}
	sh := s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.eng.NewDeltaWriter(w)
}

// AppendDeltaShard appends one epoch of shard i's dirty groups to its log,
// locking only that shard. The combined attestation over an append round is
// RootDigest() (CombineRoots of the shard roots), which cmd/memserved seals
// into its manifest.
func (s *ShardedEngine) AppendDeltaShard(i int, w *wal.Writer) (DeltaStats, error) {
	if i < 0 || i >= len(s.shards) {
		return DeltaStats{}, fmt.Errorf("core: shard %d out of range [0,%d)", i, len(s.shards))
	}
	sh := s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.eng.AppendDelta(w)
}

// BeginShardedImage writes the v2 container header for an image whose
// shard sections will be produced one CheckpointShard call at a time. A
// 1-shard engine writes nothing: its single section IS the (v1-compatible)
// image, mirroring Persist.
func (s *ShardedEngine) BeginShardedImage(w io.Writer) error {
	if len(s.shards) == 1 {
		return nil
	}
	if _, err := w.Write(persistMagic2[:]); err != nil {
		return err
	}
	return writeU64(w, uint64(len(s.shards)))
}

// CheckpointShard persists shard i's image section to baseW and opens a
// fresh delta log for it on logW — atomically under the shard's lock, so
// the log's seed is exactly the root of the persisted section even while
// other shards keep serving traffic. Calling it for every shard in order
// after BeginShardedImage produces a valid sharded image whose per-shard
// sections may legitimately be snapshots of different instants: each
// shard's log covers its own section, which is all incremental recovery
// needs. Returns the shard root sealed into the log's seed.
func (s *ShardedEngine) CheckpointShard(i int, baseW, logW io.Writer) (RootDigest, *wal.Writer, error) {
	if i < 0 || i >= len(s.shards) {
		return RootDigest{}, nil, fmt.Errorf("core: shard %d out of range [0,%d)", i, len(s.shards))
	}
	sh := s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	root, err := sh.eng.Persist(baseW)
	if err != nil {
		return RootDigest{}, nil, fmt.Errorf("core: checkpointing shard %d: %w", i, err)
	}
	w, err := sh.eng.NewDeltaWriter(logW)
	if err != nil {
		return RootDigest{}, nil, err
	}
	return root, w, nil
}

// ResumeShardedIncremental rebuilds a sharded engine from a base image plus
// one delta log per shard. Each shard's section resumes and replays
// independently (per-shard reports), then the combined root recomputed from
// the recovered shards is checked against expectRoot when supplied. wals
// may be nil (base only); individual entries may be nil for shards with no
// log. As with ResumeSharded, a v1 image is accepted when shards is 1.
func ResumeShardedIncremental(cfg Config, shards int, base io.Reader, wals []io.Reader, expectRoot *RootDigest) (*ShardedEngine, []*RecoveryReport, error) {
	if err := ValidateShards(cfg, shards); err != nil {
		return nil, nil, err
	}
	if cfg.DisableEncryption {
		return nil, nil, fmt.Errorf("core: cannot resume with encryption disabled")
	}
	if wals != nil && len(wals) != shards {
		return nil, nil, fmt.Errorf("core: %d delta logs for %d shards", len(wals), shards)
	}
	shardWAL := func(i int) io.Reader {
		if wals == nil {
			return nil
		}
		return wals[i]
	}

	br := bufio.NewReaderSize(base, 1<<16)
	magic, err := br.Peek(8)
	if err != nil {
		return nil, nil, fmt.Errorf("core: reading image header: %w", err)
	}
	engines := make([]*Engine, shards)
	reports := make([]*RecoveryReport, shards)

	switch {
	case [8]byte(magic) == persistMagic:
		if shards != 1 {
			return nil, nil, fmt.Errorf("core: v1 image holds one shard, config asks for %d", shards)
		}
		eng, err := Resume(shardConfig(cfg, 1, 0), br, nil)
		if err != nil {
			return nil, nil, err
		}
		engines[0] = eng
	case [8]byte(magic) == persistMagic2:
		if _, err := br.Discard(8); err != nil {
			return nil, nil, err
		}
		gotShards, err := readU64(br)
		if err != nil {
			return nil, nil, err
		}
		if gotShards != uint64(shards) {
			return nil, nil, fmt.Errorf("core: image holds %d shards, config asks for %d", gotShards, shards)
		}
		for i := range engines {
			eng, err := Resume(shardConfig(cfg, shards, i), br, nil)
			if err != nil {
				return nil, nil, fmt.Errorf("core: resuming shard %d: %w", i, err)
			}
			engines[i] = eng
		}
	default:
		return nil, nil, fmt.Errorf("core: not an engine image")
	}

	roots := make([][sha256.Size]byte, shards)
	for i, eng := range engines {
		rep, err := eng.resumeDelta(shardWAL(i))
		reports[i] = rep
		if err != nil {
			return nil, reports, fmt.Errorf("core: recovering shard %d: %w", i, err)
		}
		roots[i] = rep.Root
	}
	if expectRoot != nil {
		if got := tree.CombineRoots(roots); got != *expectRoot {
			rep := &RecoveryReport{
				Status:   RecoveryRollback,
				FailedAt: -1,
				Reason:   "combined root over recovered shards does not match the pinned digest (rollback or truncated history)",
				Root:     got,
			}
			return nil, reports, &RecoveryError{Report: rep}
		}
	}
	s, err := wrapResumed(cfg, engines)
	if err != nil {
		return nil, reports, err
	}
	s.EnableDeltaTracking()
	return s, reports, nil
}

// CombinedRecoveredRoot recomputes the combined attestation digest from
// per-shard recovery reports — what a caller compares against a pinned
// combined root after ResumeShardedIncremental ran unpinned.
func CombinedRecoveredRoot(reports []*RecoveryReport) RootDigest {
	roots := make([][sha256.Size]byte, len(reports))
	for i, rep := range reports {
		roots[i] = rep.Root
	}
	return tree.CombineRoots(roots)
}
