package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"authmem/internal/ctr"
	"authmem/internal/dram"
)

// TestIntegrationMixedCampaign runs a sustained mixed workload with
// interleaved attacks against every design point: all tampering must be
// detected, all repaired faults must restore exact data, and no clean read
// may ever return wrong bytes.
func TestIntegrationMixedCampaign(t *testing.T) {
	for _, cfg := range allDesignPoints() {
		name := cfg.Scheme.String() + "/" + cfg.Placement.String()
		e := newEngine(t, cfg)
		rng := rand.New(rand.NewSource(99))
		shadow := make(map[uint64][]byte) // ground truth
		poisoned := make(map[uint64]bool) // blocks whose region was attacked

		const blocks = 600
		dst := make([]byte, BlockBytes)
		for step := 0; step < 6000; step++ {
			blk := uint64(rng.Intn(blocks))
			addr := blk * BlockBytes
			switch op := rng.Intn(10); {
			case op < 5: // write
				data := block(rng.Int63())
				if err := e.Write(addr, data); err != nil {
					t.Fatalf("%s: write: %v", name, err)
				}
				shadow[addr] = data
				delete(poisoned, addr)
			case op < 9: // read
				want, written := shadow[addr]
				info, err := e.Read(addr, dst)
				if poisoned[addr] {
					var ie *IntegrityError
					if !errors.As(err, &ie) {
						t.Fatalf("%s: poisoned block %d read without error", name, blk)
					}
					continue
				}
				if err != nil {
					t.Fatalf("%s: read %#x: %v", name, addr, err)
				}
				if written && !bytes.Equal(dst, want) {
					t.Fatalf("%s: block %d returned wrong data", name, blk)
				}
				if !written && !info.Fresh && !allZero(dst) {
					t.Fatalf("%s: unwritten block %d returned nonzero data", name, blk)
				}
			default: // attack: uncorrectable ciphertext corruption
				if _, ok := shadow[addr]; !ok {
					continue
				}
				// Four distinct flips inside one word: beyond both
				// SEC-DED (1/word) and flip-and-check (2/block); any
				// SEC-DED miscorrection is caught by the MAC.
				word := rng.Intn(8)
				for _, b := range rng.Perm(64)[:4] {
					if err := e.TamperCiphertext(addr, word*64+b); err != nil {
						t.Fatalf("%s: tamper: %v", name, err)
					}
				}
				poisoned[addr] = true
			}
		}
	}
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// TestIntegrationScrubUnderFaultStorm verifies a scrub-repair-verify cycle
// at scale: a storm of single-bit faults across a large resident set is
// fully healed by one scrub pass.
func TestIntegrationScrubUnderFaultStorm(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInECC)
	e := newEngine(t, cfg)
	rng := rand.New(rand.NewSource(5))
	const blocks = 2000
	for i := uint64(0); i < blocks; i++ {
		if err := e.Write(i*BlockBytes, block(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	faulted := map[uint64]bool{}
	for len(faulted) < 100 {
		blk := uint64(rng.Intn(blocks))
		if faulted[blk] {
			continue
		}
		faulted[blk] = true
		if err := e.TamperCiphertext(blk*BlockBytes, rng.Intn(512)); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := e.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.ParityFlagged != 100 || rep.Corrected != 100 || rep.Uncorrectable != 0 {
		t.Fatalf("scrub report %+v", rep)
	}
	dst := make([]byte, BlockBytes)
	for i := uint64(0); i < blocks; i++ {
		if _, err := e.Read(i*BlockBytes, dst); err != nil {
			t.Fatalf("block %d unreadable after scrub: %v", i, err)
		}
		if !bytes.Equal(dst, block(int64(i))) {
			t.Fatalf("block %d data wrong after scrub", i)
		}
	}
}

// TestIntegrationEngineAndTimingModelAgree drives the identical write-back
// sequence through the functional engine and the timing model: because they
// share the counter-scheme implementation, their scheme-event statistics
// must match exactly.
func TestIntegrationEngineAndTimingModelAgree(t *testing.T) {
	for _, kind := range []ctr.Kind{ctr.Split, ctr.Delta, ctr.DualLength} {
		cfg := smallCfg(kind, MACInECC)
		eng := newEngine(t, cfg)
		tm, err := NewTimingModel(cfg, dram.MustNew(dram.DDR3_1600(4)))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		data := block(1)
		var now uint64
		for i := 0; i < 30000; i++ {
			blk := uint64(rng.Intn(256))
			if rng.Intn(3) == 0 {
				blk = uint64(rng.Intn(8)) // hot blocks force overflows
			}
			if err := eng.Write(blk*BlockBytes, data); err != nil {
				t.Fatal(err)
			}
			now = tm.WriteBack(now, blk*BlockBytes)
		}
		es, ts := eng.SchemeStats(), tm.Scheme().Stats()
		if es != ts {
			t.Fatalf("%s: engine %+v, timing %+v", kind, es, ts)
		}
		if es.Reencryptions == 0 {
			t.Fatalf("%s: campaign produced no re-encryptions; test is vacuous", kind)
		}
	}
}

// TestIntegrationColdBootWipe models the cold-boot attack of the paper's
// introduction: the attacker dumps and perturbs large memory regions. Every
// touched block must either read back exactly or be refused — never silent
// garbage.
func TestIntegrationColdBootWipe(t *testing.T) {
	for _, placement := range []MACPlacement{MACInline, MACInECC} {
		cfg := smallCfg(ctr.Delta, placement)
		e := newEngine(t, cfg)
		rng := rand.New(rand.NewSource(13))
		const blocks = 500
		for i := uint64(0); i < blocks; i++ {
			if err := e.Write(i*BlockBytes, block(int64(i))); err != nil {
				t.Fatal(err)
			}
		}
		// Perturb a contiguous half of memory with heavy bit noise.
		for blk := uint64(0); blk < blocks/2; blk++ {
			flips := rng.Intn(20) + 3
			for f := 0; f < flips; f++ {
				if err := e.TamperCiphertext(blk*BlockBytes, rng.Intn(512)); err != nil {
					t.Fatal(err)
				}
			}
		}
		dst := make([]byte, BlockBytes)
		var refused int
		for blk := uint64(0); blk < blocks; blk++ {
			_, err := e.Read(blk*BlockBytes, dst)
			if err != nil {
				var ie *IntegrityError
				if !errors.As(err, &ie) {
					t.Fatalf("unexpected error type: %v", err)
				}
				refused++
				continue
			}
			if !bytes.Equal(dst, block(int64(blk))) {
				t.Fatalf("%s: block %d returned silently corrupted data", placement, blk)
			}
		}
		if refused < int(blocks)/4 {
			t.Fatalf("%s: only %d blocks refused under heavy corruption", placement, refused)
		}
	}
}

// TestIntegrationReplayAfterReencryption combines the two stateful
// mechanisms: a snapshot taken before a group re-encryption must not verify
// after it (the re-encryption advanced every counter in the group).
func TestIntegrationReplayAfterReencryption(t *testing.T) {
	cfg := smallCfg(ctr.Split, MACInECC)
	e := newEngine(t, cfg)
	victim := uint64(5) * BlockBytes
	if err := e.Write(victim, block(50)); err != nil {
		t.Fatal(err)
	}
	snap, err := e.Snapshot(victim)
	if err != nil {
		t.Fatal(err)
	}
	// Hammer a different block in the same group until it re-encrypts,
	// which rewrites the victim too.
	for i := 0; i < 200; i++ {
		if err := e.Write(0, block(51)); err != nil {
			t.Fatal(err)
		}
	}
	if e.SchemeStats().Reencryptions == 0 {
		t.Fatal("no re-encryption happened")
	}
	if err := e.Replay(snap); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, BlockBytes)
	var ie *IntegrityError
	if _, err := e.Read(victim, dst); !errors.As(err, &ie) {
		t.Fatalf("pre-re-encryption snapshot verified after replay: %v", err)
	}
}
