package core

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"

	"authmem/internal/ctr"
	"authmem/internal/tree"
)

// Tests for the lock-free warm-read path: the seqlock protocol itself, the
// ShardedEngine fast paths built on it, the zero-allocation pins, and a
// -race stress mixing readers with writers, tamper, repair, and re-encrypt
// traffic on the same lines.

// stamp fills a block with 8 copies of blk<<20|version, so a concurrent
// reader can detect both torn reads (words disagree) and stale reads (a
// version that regresses below one it has already observed).
func stamp(dst []byte, blk, version uint64) {
	w := blk<<20 | version
	for i := 0; i < BlockBytes; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:], w)
	}
}

// parseStamp decodes a stamped block. torn reports words disagreeing — the
// one outcome the seqlock protocol must make impossible.
func parseStamp(buf []byte) (blk, version uint64, torn bool) {
	w := binary.LittleEndian.Uint64(buf)
	for i := 8; i < BlockBytes; i += 8 {
		if binary.LittleEndian.Uint64(buf[i:]) != w {
			return 0, 0, true
		}
	}
	return w >> 20, w & (1<<20 - 1), false
}

// TestBlockCacheSeqlock exercises the protocol on a bare cache: install,
// probe, displacement, eviction, epoch flush, and the writer-in-progress
// (odd generation) retry path.
func TestBlockCacheSeqlock(t *testing.T) {
	c := newBlockCache(8)
	dst := make([]byte, BlockBytes)

	if hit, _ := c.probe(3, dst); hit {
		t.Fatal("empty cache reported a hit")
	}
	pt := block(3)
	c.insert(3, pt)
	hit, retries := c.probe(3, dst)
	if !hit || retries != 0 {
		t.Fatalf("clean probe: hit=%v retries=%d", hit, retries)
	}
	if string(dst) != string(pt) {
		t.Fatal("probe returned wrong plaintext")
	}

	// Same slot, different tag: block 11 displaces block 3 (mask 7).
	c.insert(11, block(11))
	if hit, _ := c.probe(3, dst); hit {
		t.Fatal("displaced line still resident")
	}
	if hit, _ := c.probe(11, dst); !hit {
		t.Fatal("displacing line not resident")
	}

	c.evict(11)
	if hit, _ := c.probe(11, dst); hit {
		t.Fatal("evicted line still resident")
	}

	// Epoch flush invalidates every resident line in O(1); a line installed
	// after the flush is valid under the new epoch.
	c.insert(5, block(5))
	c.flush()
	if hit, _ := c.probe(5, dst); hit {
		t.Fatal("flushed line still resident")
	}
	c.insert(5, pt)
	if hit, _ := c.probe(5, dst); !hit {
		t.Fatal("post-flush reinstall not resident")
	}

	// A permanently odd generation models a writer caught mid-update: the
	// probe must retry its bounded budget and fall back to a miss, never
	// return the half-written payload.
	e := &c.entries[5&c.mask]
	e.gen.Add(1)
	hit, retries = c.probe(5, dst)
	if hit {
		t.Fatal("probe returned a hit from a line mid-update")
	}
	if retries != seqlockMaxRetries+1 {
		t.Fatalf("mid-update probe retries = %d, want %d", retries, seqlockMaxRetries+1)
	}
	e.gen.Add(1)
	if hit, _ := c.probe(5, dst); !hit {
		t.Fatal("line not resident after writer completes")
	}
}

// TestLockFreeWarmReads checks that warm single-block reads are served by
// the lock-free path (write-allocate makes every written block warm) and
// that the counters attribute them correctly.
func TestLockFreeWarmReads(t *testing.T) {
	for _, cfg := range allDesignPoints() {
		s := newSharded(t, cfg, 4)
		const blocks = 256
		for i := uint64(0); i < blocks; i++ {
			if err := s.Write(i*BlockBytes, block(int64(i))); err != nil {
				t.Fatal(err)
			}
		}
		base := s.Stats()
		dst := make([]byte, BlockBytes)
		const rounds = 4
		for r := 0; r < rounds; r++ {
			for i := uint64(0); i < blocks; i++ {
				if _, err := s.Read(i*BlockBytes, dst); err != nil {
					t.Fatalf("%s/%s: warm read blk %d: %v", cfg.Scheme, cfg.Placement, i, err)
				}
				if string(dst) != string(block(int64(i))) {
					t.Fatalf("%s/%s: warm read blk %d returned wrong data", cfg.Scheme, cfg.Placement, i)
				}
			}
		}
		d := statDelta(base, s.Stats())
		if d.LockFreeHits != rounds*blocks {
			t.Errorf("%s/%s: LockFreeHits = %d, want %d", cfg.Scheme, cfg.Placement, d.LockFreeHits, rounds*blocks)
		}
		if d.SlowPathReads != 0 {
			t.Errorf("%s/%s: SlowPathReads = %d on an all-warm workload", cfg.Scheme, cfg.Placement, d.SlowPathReads)
		}
		if d.Reads != rounds*blocks {
			t.Errorf("%s/%s: Reads = %d, want %d", cfg.Scheme, cfg.Placement, d.Reads, rounds*blocks)
		}
	}
}

func statDelta(a, b EngineStats) EngineStats {
	return EngineStats{
		Reads:         b.Reads - a.Reads,
		LockFreeHits:  b.LockFreeHits - a.LockFreeHits,
		SlowPathReads: b.SlowPathReads - a.SlowPathReads,
	}
}

// TestLockFreeSpanReads checks the ReadBlocks warm-prefix path across a
// shard boundary, and that a cold tail falls through to the locked fan-out
// without double-counting.
func TestLockFreeSpanReads(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInECC)
	s := newSharded(t, cfg, 4)
	shardBlocks := s.ShardBytes() / BlockBytes

	// A warm span straddling the shard 0/1 boundary.
	start := shardBlocks - 8
	const n = 16
	src := make([]byte, n*BlockBytes)
	for i := uint64(0); i < n; i++ {
		copy(src[i*BlockBytes:], block(int64(start+i)))
	}
	if err := s.WriteBlocks(start*BlockBytes, src); err != nil {
		t.Fatal(err)
	}
	base := s.Stats()
	dst := make([]byte, n*BlockBytes)
	if err := s.ReadBlocks(start*BlockBytes, dst); err != nil {
		t.Fatal(err)
	}
	if string(dst) != string(src) {
		t.Fatal("warm span read returned wrong data")
	}
	d := statDelta(base, s.Stats())
	if d.LockFreeHits != n || d.SlowPathReads != 0 {
		t.Errorf("warm span: LockFreeHits=%d SlowPathReads=%d, want %d/0", d.LockFreeHits, d.SlowPathReads, n)
	}

	// Evict the middle: the warm prefix is served lock-free, the remainder
	// goes through the locked fan-out, and the two halves must add up.
	s.WithShard(0, func(eng *Engine) { eng.bc.evict(start + 4) })
	base = s.Stats()
	if err := s.ReadBlocks(start*BlockBytes, dst); err != nil {
		t.Fatal(err)
	}
	if string(dst) != string(src) {
		t.Fatal("split span read returned wrong data")
	}
	d = statDelta(base, s.Stats())
	if d.LockFreeHits != 4 || d.SlowPathReads != n-4 {
		t.Errorf("split span: LockFreeHits=%d SlowPathReads=%d, want 4/%d", d.LockFreeHits, d.SlowPathReads, n-4)
	}
}

// TestLockFreeDisabled checks the diagnostic switch: with the fast path off
// every read takes the locked slow path and LockFreeHits stays zero.
func TestLockFreeDisabled(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInECC)
	s := newSharded(t, cfg, 4)
	s.SetLockFreeReads(false)
	if s.LockFreeReads() {
		t.Fatal("switch did not latch")
	}
	const blocks = 64
	for i := uint64(0); i < blocks; i++ {
		if err := s.Write(i*BlockBytes, block(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	base := s.Stats()
	dst := make([]byte, BlockBytes)
	for i := uint64(0); i < blocks; i++ {
		if _, err := s.Read(i*BlockBytes, dst); err != nil {
			t.Fatal(err)
		}
	}
	d := statDelta(base, s.Stats())
	if d.LockFreeHits != 0 {
		t.Errorf("LockFreeHits = %d with the fast path disabled", d.LockFreeHits)
	}
	if d.SlowPathReads != blocks {
		t.Errorf("SlowPathReads = %d, want %d", d.SlowPathReads, blocks)
	}
}

// TestLockFreeTamperCoherence checks the trust-boundary invariant: once a
// fault lands — in ciphertext, the check lane, a counter block, or a tree
// node — no subsequent read may be served stale-but-trusted plaintext from
// the verified-block cache. Every tamper entry point publishes through the
// same generation/epoch protocol the probe reads, so the warm line is gone
// before the fault exists.
func TestLockFreeTamperCoherence(t *testing.T) {
	planes := []struct {
		name   string
		tamper func(s *ShardedEngine, addr uint64) error
	}{
		{"ciphertext", func(s *ShardedEngine, addr uint64) error { return s.TamperCiphertext(addr, 7) }},
		{"ecc-lane", func(s *ShardedEngine, addr uint64) error { return s.TamperECCLane(addr, 3) }},
		{"counter", func(s *ShardedEngine, addr uint64) error { return s.TamperCounterForAddr(addr, 11) }},
	}
	for _, p := range planes {
		t.Run(p.name, func(t *testing.T) {
			cfg := smallCfg(ctr.Delta, MACInECC)
			s := newSharded(t, cfg, 4)
			const addr = 5 * BlockBytes
			pt := block(99)
			if err := s.Write(addr, pt); err != nil {
				t.Fatal(err)
			}
			dst := make([]byte, BlockBytes)
			base := s.Stats()
			if _, err := s.Read(addr, dst); err != nil {
				t.Fatal(err)
			}
			if statDelta(base, s.Stats()).LockFreeHits != 1 {
				t.Fatal("warm-up read was not lock-free; test precondition broken")
			}
			if err := p.tamper(s, addr); err != nil {
				t.Fatal(err)
			}
			base = s.Stats()
			// A single flipped bit is within ECC correction for some planes;
			// the requirement is only that the read is NOT a lock-free hit on
			// pre-fault plaintext — detection/correction must get to run.
			if _, err := s.Read(addr, dst); err == nil {
				if string(dst) != string(pt) {
					t.Fatal("read after tamper returned silent garbage")
				}
			}
			d := statDelta(base, s.Stats())
			if d.LockFreeHits != 0 {
				t.Errorf("read after %s tamper hit the lock-free cache (%d hits)", p.name, d.LockFreeHits)
			}
			if d.SlowPathReads != 1 {
				t.Errorf("read after %s tamper: SlowPathReads = %d, want 1", p.name, d.SlowPathReads)
			}
		})
	}
}

// TestLockFreeWarmReadAllocs pins the hot paths to zero allocations:
// warm Read, a warm cross-shard ReadBlocks span, Stats(), and FlushAll()
// on a clean region.
func TestLockFreeWarmReadAllocs(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInECC)
	s := newSharded(t, cfg, 4)
	shardBlocks := s.ShardBytes() / BlockBytes
	start := shardBlocks - 4
	const n = 8
	src := make([]byte, n*BlockBytes)
	for i := uint64(0); i < n; i++ {
		copy(src[i*BlockBytes:], block(int64(start+i)))
	}
	if err := s.WriteBlocks(start*BlockBytes, src); err != nil {
		t.Fatal(err)
	}
	if err := s.FlushAll(); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, n*BlockBytes)

	if a := testing.AllocsPerRun(200, func() {
		if _, err := s.Read(start*BlockBytes, dst[:BlockBytes]); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Errorf("warm Read allocates %.1f per op, want 0", a)
	}
	if a := testing.AllocsPerRun(200, func() {
		if err := s.ReadBlocks(start*BlockBytes, dst); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Errorf("warm cross-shard ReadBlocks allocates %.1f per op, want 0", a)
	}
	if a := testing.AllocsPerRun(200, func() { s.Stats() }); a != 0 {
		t.Errorf("Stats allocates %.1f per op, want 0", a)
	}
	if a := testing.AllocsPerRun(200, func() {
		if err := s.FlushAll(); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Errorf("quiescent FlushAll allocates %.1f per op, want 0", a)
	}
}

// TestLockFreeConcurrentStress is the -race stress for the seqlock caches:
// lock-free readers race disjoint-range writers, a tamper/recover goroutine
// rotating fault planes (ciphertext, check lane, counter block, tree node),
// and the re-encrypt sweeps the write traffic triggers — all on lines the
// readers are probing. Version-stamped blocks make the two forbidden
// outcomes visible: a torn read (seqlock failure) and a stale read (a
// version regressing, i.e. trusted-but-old plaintext after an eviction or
// flush should have retired it).
func TestLockFreeConcurrentStress(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInECC)
	s := newSharded(t, cfg, 4)
	blocks := cfg.DataBlocks()
	shardBlocks := s.ShardBytes() / BlockBytes

	writerOps, readerOps, tamperOps := 600, 3000, 150
	if testing.Short() {
		writerOps, readerOps, tamperOps = 150, 600, 40
	}

	// Block ranges: three writer ranges and one tamper range, each spanning
	// a shard boundary so cross-shard span reads and same-shard contention
	// both happen; group-aligned so counter tampering stays in-range.
	const rangeBlocks = 2 * ctr.GroupBlocks
	ranges := make([][2]uint64, 4)
	for i := range ranges {
		lo := uint64(i)*shardBlocks + shardBlocks - rangeBlocks/2
		if lo+rangeBlocks > blocks {
			lo = blocks - rangeBlocks
		}
		lo = lo / ctr.GroupBlocks * ctr.GroupBlocks
		ranges[i] = [2]uint64{lo, lo + rangeBlocks}
	}
	tamperRange := ranges[3]

	// Seed every block in every range with version 0.
	buf := make([]byte, BlockBytes)
	for _, r := range ranges {
		for blk := r[0]; blk < r[1]; blk++ {
			stamp(buf, blk, 0)
			if err := s.Write(blk*BlockBytes, buf); err != nil {
				t.Fatal(err)
			}
		}
	}

	var (
		wg       sync.WaitGroup
		failed   atomic.Bool
		halts    atomic.Uint64 // loud fault outcomes observed by any role
		mu       sync.Mutex
		failures []string
	)
	fail := func(msg string) {
		failed.Store(true)
		mu.Lock()
		if len(failures) < 10 {
			failures = append(failures, msg)
		}
		mu.Unlock()
	}

	// Writers: each owns one range exclusively, bumping the version stamp on
	// every write. Hammering a 2-group window under the Delta scheme also
	// drives overflow re-encrypt sweeps into the mix.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(r [2]uint64, seed uint64) {
			defer wg.Done()
			buf := make([]byte, BlockBytes)
			versions := make(map[uint64]uint64)
			x := seed
			for op := 0; op < writerOps && !failed.Load(); op++ {
				x = x*6364136223846793005 + 1442695040888963407
				blk := r[0] + x>>33%(r[1]-r[0])
				versions[blk]++
				stamp(buf, blk, versions[blk])
				if err := s.Write(blk*BlockBytes, buf); err != nil {
					fail("writer: " + err.Error())
					return
				}
			}
		}(ranges[w], uint64(w+1))
	}

	// Tamperer: owns its range; rotates fault planes, then recovers the
	// victim loudly and re-stamps it with a bumped version so readers keep
	// a monotone view.
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, BlockBytes)
		versions := make(map[uint64]uint64)
		x := uint64(0x9E3779B97F4A7C15)
		for op := 0; op < tamperOps && !failed.Load(); op++ {
			x = x*6364136223846793005 + 1442695040888963407
			blk := tamperRange[0] + x>>33%(tamperRange[1]-tamperRange[0])
			addr := blk * BlockBytes
			var err error
			switch op % 4 {
			case 0:
				err = s.TamperCiphertext(addr, int(x>>20)%(BlockBytes*8))
			case 1:
				err = s.TamperECCLane(addr, int(x>>20)%64)
			case 2:
				err = s.TamperCounterForAddr(addr, int(x>>20)%(BlockBytes*8))
			case 3:
				shard := s.ShardOf(addr)
				local := addr - uint64(shard)*s.ShardBytes()
				s.WithShard(shard, func(eng *Engine) {
					tr := eng.Tree()
					off := tr.OffChipLevels()
					if off == 0 {
						return
					}
					leaf := eng.MetaLeaf(eng.MetadataIndex(local))
					id := tree.NodeID{Level: 0, Index: leaf / tree.Arity}
					err = eng.TamperTreeNode(id, int(x>>20)%(tree.NodeBytes*8))
				})
			}
			if err != nil {
				fail("tamper: " + err.Error())
				return
			}
			ri, rerr := s.ReadRecover(addr, buf)
			if rerr != nil || ri.MetadataRepaired || ri.RetryRecovered ||
				ri.CorrectedDataBits > 0 || ri.CorrectedMACBits > 0 {
				halts.Add(1) // loud: halted, repaired, or corrected
			}
			versions[blk]++
			stamp(buf, blk, versions[blk])
			if werr := s.Write(addr, buf); werr != nil {
				fail("tamper resync write: " + werr.Error())
				return
			}
		}
	}()

	// Readers: probe every range — including the one under attack — through
	// both single-block and span paths, checking torn/stale invariants. A
	// read error is a loud outcome, which is always acceptable.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			dst := make([]byte, BlockBytes)
			span := make([]byte, 8*BlockBytes)
			lastSeen := make(map[uint64]uint64)
			check := func(buf []byte, wantBlk uint64) {
				blk, v, torn := parseStamp(buf)
				if torn {
					fail("torn read: words disagree within one block")
					return
				}
				if blk != wantBlk {
					fail("read returned another block's stamp")
					return
				}
				if last, ok := lastSeen[blk]; ok && v < last {
					fail("stale read: version regressed on a warm line")
					return
				}
				lastSeen[blk] = v
			}
			x := seed
			for op := 0; op < readerOps && !failed.Load(); op++ {
				x = x*6364136223846793005 + 1442695040888963407
				r := ranges[x>>60%4]
				if op%8 == 7 {
					start := r[0] + x>>33%(r[1]-r[0]-8)
					if err := s.ReadBlocks(start*BlockBytes, span); err != nil {
						halts.Add(1)
						continue
					}
					for i := uint64(0); i < 8; i++ {
						check(span[i*BlockBytes:(i+1)*BlockBytes], start+i)
					}
					continue
				}
				blk := r[0] + x>>33%(r[1]-r[0])
				if _, err := s.Read(blk*BlockBytes, dst); err != nil {
					halts.Add(1)
					continue
				}
				check(dst, blk)
			}
		}(uint64(g + 101))
	}

	wg.Wait()
	for _, f := range failures {
		t.Error(f)
	}
	st := s.Stats()
	if st.LockFreeHits == 0 {
		t.Error("stress ran without a single lock-free hit; fast path never engaged")
	}
	if halts.Load() == 0 {
		t.Error("stress observed no loud fault outcome; tamper traffic never landed")
	}
	t.Logf("lockFreeHits=%d seqlockRetries=%d slowPathReads=%d halts=%d quarantined=%d",
		st.LockFreeHits, st.SeqlockRetries, st.SlowPathReads, halts.Load(), st.Quarantined)

	// Quiesce and verify the final state is still fully readable: rewrite
	// the tamper range from a fresh stamp (some victims may sit quarantined
	// or faulted), then check every range decrypts cleanly.
	for blk := tamperRange[0]; blk < tamperRange[1]; blk++ {
		stamp(buf, blk, 1<<19)
		if err := s.Write(blk*BlockBytes, buf); err != nil {
			t.Fatalf("final resync blk %d: %v", blk, err)
		}
	}
	for _, r := range ranges {
		for blk := r[0]; blk < r[1]; blk++ {
			if _, err := s.ReadRecover(blk*BlockBytes, buf); err != nil {
				t.Fatalf("final sweep blk %d: %v", blk, err)
			}
			if _, _, torn := parseStamp(buf); torn {
				t.Fatalf("final sweep blk %d: malformed stamp", blk)
			}
		}
	}
}
