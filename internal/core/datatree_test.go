package core

import (
	"bytes"
	"errors"
	"testing"

	"authmem/internal/ctr"
	"authmem/internal/dram"
)

func dataTreeCfg() Config {
	cfg := smallCfg(ctr.Monolithic, MACInline)
	cfg.DataTree = true
	return cfg
}

func TestDataTreeRoundTrip(t *testing.T) {
	e := newEngine(t, dataTreeCfg())
	want := block(30)
	if err := e.Write(0x500, want); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, BlockBytes)
	if _, err := e.Read(0x500, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, want) {
		t.Fatal("data-tree round trip corrupted data")
	}
}

// TestDataTreeCatchesDataReplayDirectly: in the classic design, restoring
// stale ciphertext+MAC (a valid pair under a stale counter... or even the
// *current* counter if the attacker also rolls the counter block) is caught
// by the data leaf itself.
func TestDataTreeCatchesDataReplayDirectly(t *testing.T) {
	e := newEngine(t, dataTreeCfg())
	addr := uint64(0x600)
	if err := e.Write(addr, block(31)); err != nil {
		t.Fatal(err)
	}
	snap, err := e.Snapshot(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Write(addr, block(32)); err != nil {
		t.Fatal(err)
	}
	if err := e.Replay(snap); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, BlockBytes)
	var ie *IntegrityError
	if _, err := e.Read(addr, dst); !errors.As(err, &ie) {
		t.Fatalf("data-tree replay undetected: %v", err)
	}
}

func TestDataTreeSurvivesReencryption(t *testing.T) {
	cfg := smallCfg(ctr.Split, MACInECC)
	cfg.DataTree = true
	e := newEngine(t, cfg)
	neighbor := block(33)
	if err := e.Write(3*BlockBytes, neighbor); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := e.Write(0, block(34)); err != nil {
			t.Fatal(err)
		}
	}
	if e.SchemeStats().Reencryptions == 0 {
		t.Fatal("no re-encryption")
	}
	dst := make([]byte, BlockBytes)
	if _, err := e.Read(3*BlockBytes, dst); err != nil {
		t.Fatalf("neighbor unreadable after re-encryption: %v", err)
	}
	if !bytes.Equal(dst, neighbor) {
		t.Fatal("neighbor data wrong")
	}
}

// TestDataTreeGeometryAndOverhead reproduces §2.2's motivation for Bonsai
// trees: at 512MB the data tree is ~60x larger and two levels deeper than
// the BMT over delta-encoded counters.
func TestDataTreeGeometryAndOverhead(t *testing.T) {
	classic := Default(ctr.Monolithic, MACInline)
	classic.DataTree = true
	co, err := ComputeOverhead(classic)
	if err != nil {
		t.Fatal(err)
	}
	bmt, err := ComputeOverhead(Default(ctr.Delta, MACInECC))
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(co.TreeBytes) / float64(bmt.TreeBytes); ratio < 40 {
		t.Fatalf("data tree only %.1fx larger than bonsai tree", ratio)
	}
	// ~14% tree overhead for the classic design (1/7th of the region).
	pct := 100 * float64(co.TreeBytes) / float64(co.RegionBytes)
	if pct < 12 || pct > 17 {
		t.Fatalf("data tree overhead %.1f%%", pct)
	}
	if co.TreeLevels <= bmt.TreeLevels {
		t.Fatalf("data tree depth %d not above bonsai %d", co.TreeLevels, bmt.TreeLevels)
	}
}

// TestDataTreeTimingCost shows the per-access tree-walk penalty BMTs remove:
// the classic design issues strictly more DRAM transactions for the same
// miss stream.
func TestDataTreeTimingCost(t *testing.T) {
	run := func(dataTree bool) uint64 {
		cfg := Default(ctr.Monolithic, MACInline)
		cfg.DataTree = dataTree
		tm, err := NewTimingModel(cfg, dram.MustNew(dram.DDR3_1600(4)))
		if err != nil {
			t.Fatal(err)
		}
		var now uint64
		for i := uint64(0); i < 3000; i++ {
			addr := (i * 2654435761 % (1 << 22)) * BlockBytes % cfg.RegionBytes
			now = tm.ReadMiss(now, addr)
		}
		return tm.Stats().Transactions()
	}
	classic, bmt := run(true), run(false)
	if classic <= bmt+bmt/4 {
		t.Fatalf("classic tree (%d txns) should cost well above BMT (%d)", classic, bmt)
	}
}

func TestDataTreePersistResume(t *testing.T) {
	cfg := dataTreeCfg()
	e := newEngine(t, cfg)
	truth := persistCampaign(t, e)
	var buf bytes.Buffer
	digest, err := e.Persist(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Resume(cfg, bytes.NewReader(buf.Bytes()), &digest)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, BlockBytes)
	for addr, want := range truth {
		if _, err := r.Read(addr, dst); err != nil {
			t.Fatalf("read %#x: %v", addr, err)
		}
		if !bytes.Equal(dst, want) {
			t.Fatalf("block %#x wrong", addr)
		}
	}
	// Config mismatch on the DataTree flag is rejected.
	plain := cfg
	plain.DataTree = false
	if _, err := Resume(plain, bytes.NewReader(buf.Bytes()), nil); err == nil {
		t.Fatal("DataTree flag mismatch should fail")
	}
}
