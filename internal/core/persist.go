package core

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"

	"authmem/internal/ctr"
)

// Persistence for non-volatile main memory (§2.2): the encrypted region,
// its ECC/MAC bits, the counter blocks, and the integrity tree survive
// power-off exactly as they would in NVMM, and Resume rebuilds a working
// engine from them — verifying every counter block against the tree before
// accepting it.
//
// Threat model on resume: everything in the image is untrusted EXCEPT that
// the caller may pin the freshness root by passing the RootDigest returned
// at persist time (stored in trusted NVM / a TPM in a real deployment).
// Without the pin, an attacker who controls the storage can roll the whole
// memory back to an older complete snapshot — the one attack no integrity
// tree can stop from inside the untrusted medium.

// persistMagic identifies engine images (format version 1).
var persistMagic = [8]byte{'A', 'M', 'E', 'M', 'P', 'S', 'T', '1'}

// maxCodecNameLen bounds the codec-name field so a corrupted length prefix
// cannot drive a huge allocation.
const maxCodecNameLen = 64

// CodecMismatchError reports a persisted image whose check bytes were
// written under a different ECC codec than the resuming configuration
// selects. The image is well-formed; it is the configuration that must
// change (or the image be re-persisted) — decoding anyway would misread
// every block's check storage.
type CodecMismatchError struct {
	// ImageCodec is the codec recorded in the image header.
	ImageCodec string
	// ConfigCodec is the codec the resuming configuration resolved.
	ConfigCodec string
}

// Error implements error.
func (e *CodecMismatchError) Error() string {
	return fmt.Sprintf("core: image was persisted under ECC codec %q but configuration selects %q", e.ImageCodec, e.ConfigCodec)
}

// RootDigest pins the integrity tree's trusted top level.
type RootDigest [sha256.Size]byte

// Persist writes the engine's DRAM-visible state to w and returns the
// digest of the tree's trusted top level.
func (e *Engine) Persist(w io.Writer) (RootDigest, error) {
	var digest RootDigest
	if e.cfg.DisableEncryption {
		return digest, fmt.Errorf("core: nothing meaningful to persist with encryption disabled")
	}
	// Deferred Merkle maintenance must land before any state leaves the
	// trust boundary: the image and its digest cover every accepted write.
	if err := e.Flush(); err != nil {
		return digest, err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(persistMagic[:]); err != nil {
		return digest, err
	}

	// Config fingerprint, so Resume can reject mismatched geometry.
	hdr := []uint64{
		uint64(e.cfg.Scheme), uint64(e.cfg.Placement), e.cfg.RegionBytes,
		uint64(e.cfg.CorrectBits), uint64(e.cfg.OnChipTreeBytes),
		boolU64(e.cfg.DataTree),
	}
	for _, v := range hdr {
		if err := writeU64(bw, v); err != nil {
			return digest, err
		}
	}
	// Codec ID (length-prefixed name): the codec defines the stored check
	// format, so resuming under a different codec must fail closed, not
	// misdecode — see Resume.
	codecName := e.codec.Name()
	if err := writeU64(bw, uint64(len(codecName))); err != nil {
		return digest, err
	}
	if _, err := bw.WriteString(codecName); err != nil {
		return digest, err
	}

	// Data blocks. Arena iteration is ascending by block index, so the
	// image is deterministic without an explicit sort.
	if err := writeU64(bw, uint64(e.store.Len())); err != nil {
		return digest, err
	}
	var werr error
	e.store.forEach(func(blk uint64, ct []byte, meta *uint64, check []byte) {
		if werr != nil {
			return
		}
		if werr = writeU64(bw, blk); werr != nil {
			return
		}
		if _, werr = bw.Write(ct); werr != nil {
			return
		}
		if werr = writeU64(bw, *meta); werr != nil {
			return
		}
		if e.cfg.Placement == MACInline {
			_, werr = bw.Write(check)
		}
	})
	if werr != nil {
		return digest, werr
	}

	// Counter-block images, likewise in ascending order.
	if err := writeU64(bw, uint64(e.images.Len())); err != nil {
		return digest, err
	}
	e.images.forEach(func(midx uint64, img []byte) {
		if werr != nil {
			return
		}
		if werr = writeU64(bw, midx); werr != nil {
			return
		}
		_, werr = bw.Write(img)
	})
	if werr != nil {
		return digest, werr
	}

	// Integrity tree (all levels; the top level is additionally pinned
	// by the returned digest).
	if _, err := e.tr.WriteTo(bw); err != nil {
		return digest, err
	}
	digest = e.RootDigest()
	return digest, bw.Flush()
}

// RootDigest returns the digest pinning the tree's current trusted top
// level — what Persist returns, available without serializing the image.
// The sharded combining layer hashes these per-shard digests into one root.
// An exported root must reflect every accepted write, so any deferred
// Merkle maintenance is flushed first.
func (e *Engine) RootDigest() RootDigest {
	if err := e.Flush(); err != nil {
		// Flush fails only on structural tree errors, which the engine's
		// fixed geometry rules out.
		panic(err)
	}
	return sha256.Sum256(e.tr.TopLevel())
}

// Resume rebuilds an engine from a persisted image. cfg must match the
// persisting configuration (including the key material, which is never
// stored). If expectRoot is non-nil, the restored tree's top level must
// hash to it — this is the rollback defense; see the package comment.
// Every counter block in the image is verified against the tree before the
// engine accepts it.
func Resume(cfg Config, r io.Reader, expectRoot *RootDigest) (*Engine, error) {
	e, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.DisableEncryption {
		return nil, fmt.Errorf("core: cannot resume with encryption disabled")
	}
	br := bufio.NewReader(r)

	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("core: reading image header: %w", err)
	}
	if magic != persistMagic {
		return nil, fmt.Errorf("core: not an engine image")
	}
	want := []uint64{
		uint64(cfg.Scheme), uint64(cfg.Placement), cfg.RegionBytes,
		uint64(cfg.CorrectBits), uint64(cfg.OnChipTreeBytes),
		boolU64(cfg.DataTree),
	}
	for i, w := range want {
		got, err := readU64(br)
		if err != nil {
			return nil, err
		}
		if got != w {
			return nil, fmt.Errorf("core: image config field %d is %d, config says %d", i, got, w)
		}
	}

	// Codec ID: a mismatched codec means the check bytes on disk are in a
	// different format (different stride, different guarantees). Resuming
	// anyway would misdecode every block, so this fails closed with a
	// typed error callers can distinguish from corruption.
	nameLen, err := readU64(br)
	if err != nil {
		return nil, err
	}
	if nameLen > maxCodecNameLen {
		return nil, fmt.Errorf("core: image codec name length %d implausible", nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, fmt.Errorf("core: truncated image: %w", err)
	}
	if got, want := string(nameBuf), e.codec.Name(); got != want {
		return nil, &CodecMismatchError{ImageCodec: got, ConfigCodec: want}
	}

	nBlocks, err := readU64(br)
	if err != nil {
		return nil, err
	}
	if nBlocks > cfg.DataBlocks() {
		return nil, fmt.Errorf("core: image claims %d blocks, region holds %d", nBlocks, cfg.DataBlocks())
	}
	for i := uint64(0); i < nBlocks; i++ {
		blk, err := readU64(br)
		if err != nil {
			return nil, err
		}
		if blk >= cfg.DataBlocks() {
			return nil, fmt.Errorf("core: image block %d out of region", blk)
		}
		if _, err := io.ReadFull(br, e.store.Materialize(blk)); err != nil {
			return nil, err
		}
		meta, err := readU64(br)
		if err != nil {
			return nil, err
		}
		e.store.SetMeta(blk, meta)
		if cfg.Placement == MACInline {
			if _, err := io.ReadFull(br, e.store.Check(blk)); err != nil {
				return nil, err
			}
		}
	}

	nMeta, err := readU64(br)
	if err != nil {
		return nil, err
	}
	loader, ok := e.scheme.(ctr.MetadataLoader)
	if !ok {
		return nil, fmt.Errorf("core: scheme %s cannot restore metadata", e.scheme.Name())
	}
	if nMeta > e.tr.Leaves() {
		return nil, fmt.Errorf("core: image claims %d metadata blocks, tree has %d leaves", nMeta, e.tr.Leaves())
	}
	midxs := make([]uint64, 0, nMeta)
	for i := uint64(0); i < nMeta; i++ {
		m, err := readU64(br)
		if err != nil {
			return nil, err
		}
		if m >= e.tr.Leaves() {
			return nil, fmt.Errorf("core: image metadata block %d out of range", m)
		}
		if _, err := io.ReadFull(br, e.images.Store(m)); err != nil {
			return nil, err
		}
		midxs = append(midxs, m)
	}

	if _, err := e.tr.ReadFrom(br); err != nil {
		return nil, err
	}
	if expectRoot != nil {
		got := sha256.Sum256(e.tr.TopLevel())
		if got != *expectRoot {
			return nil, &IntegrityError{Reason: "persistent image root digest mismatch (rollback or corruption)", Stage: StageResume}
		}
	}

	// Verify every restored counter block against the tree before
	// trusting it, then rebuild the scheme state machines from the
	// verified images.
	for _, m := range midxs {
		img := e.images.Load(m)
		if err := e.tr.VerifyLeafFast(e.metaLeaf(m), img); err != nil {
			e.stats.IntegrityFailures.Add(1)
			return nil, &IntegrityError{
				Addr:   m * BlockBytes,
				Reason: "persistent counter block failed tree verification: " + err.Error(),
				Stage:  StageResume,
			}
		}
		if err := loader.LoadMetadata(m, *(*[BlockBytes]byte)(img)); err != nil {
			return nil, &IntegrityError{
				Addr:   m * BlockBytes,
				Reason: "persistent counter block undecodable: " + err.Error(),
				Stage:  StageResume,
			}
		}
	}
	return e, nil
}

func boolU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func writeU64(w io.Writer, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, fmt.Errorf("core: truncated image: %w", err)
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}
