package core

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"authmem/internal/ctr"
	"authmem/internal/macecc"
)

// Persistence for non-volatile main memory (§2.2): the encrypted region,
// its ECC/MAC bits, the counter blocks, and the integrity tree survive
// power-off exactly as they would in NVMM, and Resume rebuilds a working
// engine from them — verifying every counter block against the tree before
// accepting it.
//
// Threat model on resume: everything in the image is untrusted EXCEPT that
// the caller may pin the freshness root by passing the RootDigest returned
// at persist time (stored in trusted NVM / a TPM in a real deployment).
// Without the pin, an attacker who controls the storage can roll the whole
// memory back to an older complete snapshot — the one attack no integrity
// tree can stop from inside the untrusted medium.

// persistMagic identifies engine images (format version 1).
var persistMagic = [8]byte{'A', 'M', 'E', 'M', 'P', 'S', 'T', '1'}

// RootDigest pins the integrity tree's trusted top level.
type RootDigest [sha256.Size]byte

// Persist writes the engine's DRAM-visible state to w and returns the
// digest of the tree's trusted top level.
func (e *Engine) Persist(w io.Writer) (RootDigest, error) {
	var digest RootDigest
	if e.cfg.DisableEncryption {
		return digest, fmt.Errorf("core: nothing meaningful to persist with encryption disabled")
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(persistMagic[:]); err != nil {
		return digest, err
	}

	// Config fingerprint, so Resume can reject mismatched geometry.
	hdr := []uint64{
		uint64(e.cfg.Scheme), uint64(e.cfg.Placement), e.cfg.RegionBytes,
		uint64(e.cfg.CorrectBits), uint64(e.cfg.OnChipTreeBytes),
		boolU64(e.cfg.DataTree),
	}
	for _, v := range hdr {
		if err := writeU64(bw, v); err != nil {
			return digest, err
		}
	}

	// Data blocks, sorted for a deterministic image.
	blocks := make([]uint64, 0, len(e.data))
	for blk := range e.data {
		blocks = append(blocks, blk)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	if err := writeU64(bw, uint64(len(blocks))); err != nil {
		return digest, err
	}
	for _, blk := range blocks {
		if err := writeU64(bw, blk); err != nil {
			return digest, err
		}
		if _, err := bw.Write(e.data[blk][:]); err != nil {
			return digest, err
		}
		if e.cfg.Placement == MACInECC {
			if err := writeU64(bw, uint64(e.eccMeta[blk])); err != nil {
				return digest, err
			}
		} else {
			if err := writeU64(bw, e.inlineTag[blk]); err != nil {
				return digest, err
			}
			check := e.dataCheck[blk]
			if check == nil {
				check = new([8]uint8)
			}
			if _, err := bw.Write(check[:]); err != nil {
				return digest, err
			}
		}
	}

	// Counter-block images.
	midxs := make([]uint64, 0, len(e.metaImages))
	for m := range e.metaImages {
		midxs = append(midxs, m)
	}
	sort.Slice(midxs, func(i, j int) bool { return midxs[i] < midxs[j] })
	if err := writeU64(bw, uint64(len(midxs))); err != nil {
		return digest, err
	}
	for _, m := range midxs {
		if err := writeU64(bw, m); err != nil {
			return digest, err
		}
		if _, err := bw.Write(e.metaImages[m][:]); err != nil {
			return digest, err
		}
	}

	// Integrity tree (all levels; the top level is additionally pinned
	// by the returned digest).
	if _, err := e.tr.WriteTo(bw); err != nil {
		return digest, err
	}
	digest = sha256.Sum256(e.tr.TopLevel())
	return digest, bw.Flush()
}

// Resume rebuilds an engine from a persisted image. cfg must match the
// persisting configuration (including the key material, which is never
// stored). If expectRoot is non-nil, the restored tree's top level must
// hash to it — this is the rollback defense; see the package comment.
// Every counter block in the image is verified against the tree before the
// engine accepts it.
func Resume(cfg Config, r io.Reader, expectRoot *RootDigest) (*Engine, error) {
	e, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.DisableEncryption {
		return nil, fmt.Errorf("core: cannot resume with encryption disabled")
	}
	br := bufio.NewReader(r)

	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("core: reading image header: %w", err)
	}
	if magic != persistMagic {
		return nil, fmt.Errorf("core: not an engine image")
	}
	want := []uint64{
		uint64(cfg.Scheme), uint64(cfg.Placement), cfg.RegionBytes,
		uint64(cfg.CorrectBits), uint64(cfg.OnChipTreeBytes),
		boolU64(cfg.DataTree),
	}
	for i, w := range want {
		got, err := readU64(br)
		if err != nil {
			return nil, err
		}
		if got != w {
			return nil, fmt.Errorf("core: image config field %d is %d, config says %d", i, got, w)
		}
	}

	nBlocks, err := readU64(br)
	if err != nil {
		return nil, err
	}
	if nBlocks > cfg.DataBlocks() {
		return nil, fmt.Errorf("core: image claims %d blocks, region holds %d", nBlocks, cfg.DataBlocks())
	}
	for i := uint64(0); i < nBlocks; i++ {
		blk, err := readU64(br)
		if err != nil {
			return nil, err
		}
		if blk >= cfg.DataBlocks() {
			return nil, fmt.Errorf("core: image block %d out of region", blk)
		}
		ct := new([BlockBytes]byte)
		if _, err := io.ReadFull(br, ct[:]); err != nil {
			return nil, err
		}
		e.data[blk] = ct
		if cfg.Placement == MACInECC {
			meta, err := readU64(br)
			if err != nil {
				return nil, err
			}
			e.eccMeta[blk] = macecc.Meta(meta)
		} else {
			tag, err := readU64(br)
			if err != nil {
				return nil, err
			}
			e.inlineTag[blk] = tag
			check := new([8]uint8)
			if _, err := io.ReadFull(br, check[:]); err != nil {
				return nil, err
			}
			e.dataCheck[blk] = check
		}
	}

	nMeta, err := readU64(br)
	if err != nil {
		return nil, err
	}
	loader, ok := e.scheme.(ctr.MetadataLoader)
	if !ok {
		return nil, fmt.Errorf("core: scheme %s cannot restore metadata", e.scheme.Name())
	}
	if nMeta > e.tr.Leaves() {
		return nil, fmt.Errorf("core: image claims %d metadata blocks, tree has %d leaves", nMeta, e.tr.Leaves())
	}
	midxs := make([]uint64, 0, nMeta)
	for i := uint64(0); i < nMeta; i++ {
		m, err := readU64(br)
		if err != nil {
			return nil, err
		}
		if m >= e.tr.Leaves() {
			return nil, fmt.Errorf("core: image metadata block %d out of range", m)
		}
		img := new([BlockBytes]byte)
		if _, err := io.ReadFull(br, img[:]); err != nil {
			return nil, err
		}
		e.metaImages[m] = img
		midxs = append(midxs, m)
	}

	if _, err := e.tr.ReadFrom(br); err != nil {
		return nil, err
	}
	if expectRoot != nil {
		got := sha256.Sum256(e.tr.TopLevel())
		if got != *expectRoot {
			return nil, &IntegrityError{Reason: "persistent image root digest mismatch (rollback or corruption)"}
		}
	}

	// Verify every restored counter block against the tree before
	// trusting it, then rebuild the scheme state machines from the
	// verified images.
	for _, m := range midxs {
		img := e.metaImages[m]
		if _, err := e.tr.VerifyLeaf(e.metaLeaf(m), img[:]); err != nil {
			e.stats.IntegrityFailures++
			return nil, &IntegrityError{
				Addr:   m * BlockBytes,
				Reason: "persistent counter block failed tree verification: " + err.Error(),
			}
		}
		if err := loader.LoadMetadata(m, *img); err != nil {
			return nil, &IntegrityError{
				Addr:   m * BlockBytes,
				Reason: "persistent counter block undecodable: " + err.Error(),
			}
		}
	}
	return e, nil
}

func boolU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func writeU64(w io.Writer, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, fmt.Errorf("core: truncated image: %w", err)
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}
