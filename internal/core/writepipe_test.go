package core

import (
	"bytes"
	"errors"
	"testing"

	"authmem/internal/ctr"
)

// pipeEngine builds an engine with the write pipeline enabled.
func pipeEngine(t testing.TB, cfg Config, maxDirty int) *Engine {
	t.Helper()
	e := newEngine(t, cfg)
	if err := e.EnableWritePipeline(maxDirty); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestWritePipelineCombinesWrites(t *testing.T) {
	e := pipeEngine(t, smallCfg(ctr.Delta, MACInECC), 0)
	// 8 writes into one group touch a single metadata leaf: the first
	// marks it dirty, the rest combine.
	for i := uint64(0); i < 8; i++ {
		if err := e.Write(i*BlockBytes, block(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.DirtyLeaves(); got != 1 {
		t.Fatalf("DirtyLeaves = %d, want 1", got)
	}
	st := e.Stats()
	if st.WriteCombines != 7 {
		t.Fatalf("WriteCombines = %d, want 7", st.WriteCombines)
	}
	if st.DeferredLeafFlushes != 0 {
		t.Fatalf("DeferredLeafFlushes = %d before any flush", st.DeferredLeafFlushes)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := e.DirtyLeaves(); got != 0 {
		t.Fatalf("DirtyLeaves = %d after Flush, want 0", got)
	}
	if st = e.Stats(); st.DeferredLeafFlushes != 1 {
		t.Fatalf("DeferredLeafFlushes = %d, want 1 (one leaf, once)", st.DeferredLeafFlushes)
	}
	// Flush on a clean set is a no-op.
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, BlockBytes)
	for i := uint64(0); i < 8; i++ {
		if _, err := e.Read(i*BlockBytes, dst); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dst, block(int64(i))) {
			t.Fatalf("block %d corrupted through the pipeline", i)
		}
	}
}

func TestWritePipelineEpochBound(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInECC)
	e := pipeEngine(t, cfg, 2)
	// Distinct groups are distinct leaves; the second write hits the
	// maxDirty=2 bound and must flush inline.
	groupBytes := uint64(ctr.GroupBlocks * BlockBytes)
	if err := e.Write(0, block(1)); err != nil {
		t.Fatal(err)
	}
	if got := e.DirtyLeaves(); got != 1 {
		t.Fatalf("DirtyLeaves = %d, want 1", got)
	}
	if err := e.Write(groupBytes, block(2)); err != nil {
		t.Fatal(err)
	}
	if got := e.DirtyLeaves(); got != 0 {
		t.Fatalf("DirtyLeaves = %d after epoch bound, want 0 (auto-flush)", got)
	}
	if st := e.Stats(); st.DeferredLeafFlushes != 2 {
		t.Fatalf("DeferredLeafFlushes = %d, want 2", st.DeferredLeafFlushes)
	}
}

// TestWritePipelineMatchesEagerState drives identical traffic through an
// eager and a pipelined engine at every design point: after a flush the
// persisted images — ciphertext, MAC bits, counter blocks, and the whole
// tree — must be bit-identical.
func TestWritePipelineMatchesEagerState(t *testing.T) {
	for _, cfg := range allDesignPoints() {
		eager := newEngine(t, cfg)
		piped := pipeEngine(t, cfg, 0)
		for i := 0; i < 300; i++ {
			blk := uint64(i*7) % 512
			d := block(int64(i))
			if err := eager.Write(blk*BlockBytes, d); err != nil {
				t.Fatal(err)
			}
			if err := piped.Write(blk*BlockBytes, d); err != nil {
				t.Fatal(err)
			}
		}
		if piped.Stats().WriteCombines == 0 {
			t.Fatalf("%s/%s: hot traffic combined no writes", cfg.Scheme, cfg.Placement)
		}
		var a, b bytes.Buffer
		ra, err := eager.Persist(&a)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := piped.Persist(&b) // Persist flushes first
		if err != nil {
			t.Fatal(err)
		}
		if ra != rb {
			t.Fatalf("%s/%s: root digests diverge", cfg.Scheme, cfg.Placement)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("%s/%s: persisted images diverge", cfg.Scheme, cfg.Placement)
		}
	}
}

func TestWritePipelineRootDigestFlushes(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInECC)
	e := pipeEngine(t, cfg, 0)
	if err := e.Write(0, block(3)); err != nil {
		t.Fatal(err)
	}
	if e.DirtyLeaves() == 0 {
		t.Fatal("write did not defer")
	}
	d1 := e.RootDigest() // must flush: an exported root covers every write
	if e.DirtyLeaves() != 0 {
		t.Fatal("RootDigest left dirty leaves behind")
	}
	// The flushed root equals an eager engine's root for the same write.
	eager := newEngine(t, cfg)
	if err := eager.Write(0, block(3)); err != nil {
		t.Fatal(err)
	}
	if d1 != eager.RootDigest() {
		t.Fatal("pipelined root diverges from eager root")
	}
}

func TestWritePipelinePersistResume(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInECC)
	e := pipeEngine(t, cfg, 0)
	for i := uint64(0); i < 70; i++ { // spans two groups: two dirty leaves
		if err := e.Write(i*BlockBytes, block(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if e.DirtyLeaves() == 0 {
		t.Fatal("writes did not defer")
	}
	var buf bytes.Buffer
	root, err := e.Persist(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if e.DirtyLeaves() != 0 {
		t.Fatal("Persist left dirty leaves behind")
	}
	// Resume verifies every counter block against the tree: if Persist had
	// serialized a stale tree, this would fail loudly.
	r, err := Resume(cfg, bytes.NewReader(buf.Bytes()), &root)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, BlockBytes)
	for i := uint64(0); i < 70; i++ {
		if _, err := r.Read(i*BlockBytes, dst); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dst, block(int64(i))) {
			t.Fatalf("block %d corrupted across persist/resume", i)
		}
	}
}

// TestWritePipelineDirtyFaultDetected is the safety invariant: a fault
// injected into a counter image between write and flush must surface as a
// loud counter-stage failure on the cold path — the stale tree cannot vouch
// for the image, and the trusted-state comparison must refuse it.
func TestWritePipelineDirtyFaultDetected(t *testing.T) {
	for _, cfg := range allDesignPoints() {
		e := pipeEngine(t, cfg, 0)
		if err := e.Write(0, block(11)); err != nil {
			t.Fatal(err)
		}
		if e.DirtyLeaves() != 1 {
			t.Fatal("write did not defer")
		}
		midx := e.MetadataIndex(0)
		if err := e.TamperCounterBlock(midx, 5); err != nil {
			t.Fatal(err)
		}
		dst := make([]byte, BlockBytes)
		_, err := e.Read(0, dst)
		var ie *IntegrityError
		if !errors.As(err, &ie) || ie.Stage != StageCounter {
			t.Fatalf("%s/%s: dirty-window fault not detected: %v", cfg.Scheme, cfg.Placement, err)
		}
		// The failure is counter-plane, so the recovery ladder repairs it
		// from trusted state and the read completes with the right data.
		ri, err := e.ReadRecover(0, dst)
		if err != nil {
			t.Fatalf("%s/%s: recovery failed: %v", cfg.Scheme, cfg.Placement, err)
		}
		if !ri.MetadataRepaired {
			t.Fatal("recovery did not go through metadata repair")
		}
		if !bytes.Equal(dst, block(11)) {
			t.Fatal("repaired read returned wrong data")
		}
		if e.DirtyLeaves() != 0 {
			t.Fatal("repair should subsume the pending flush")
		}
	}
}

// TestWritePipelineReadAfterWrite checks the read-after-write trigger: a
// cold read of a dirty leaf flushes just that leaf and serves the read.
func TestWritePipelineReadAfterWrite(t *testing.T) {
	e := pipeEngine(t, smallCfg(ctr.Delta, MACInline), 0)
	if err := e.Write(0, block(21)); err != nil {
		t.Fatal(err)
	}
	if e.DirtyLeaves() != 1 {
		t.Fatal("write did not defer")
	}
	dst := make([]byte, BlockBytes)
	if _, err := e.Read(0, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, block(21)) {
		t.Fatal("read-after-write returned wrong data")
	}
	if e.DirtyLeaves() != 0 {
		t.Fatal("cold read of a dirty leaf must flush it")
	}
	if st := e.Stats(); st.DeferredLeafFlushes != 1 {
		t.Fatalf("DeferredLeafFlushes = %d, want 1", st.DeferredLeafFlushes)
	}
}

func TestWritePipelineScrubFlushes(t *testing.T) {
	e := pipeEngine(t, smallCfg(ctr.Delta, MACInECC), 0)
	if err := e.Write(0, block(31)); err != nil {
		t.Fatal(err)
	}
	if e.DirtyLeaves() != 1 {
		t.Fatal("write did not defer")
	}
	if _, err := e.Scrub(); err != nil {
		t.Fatal(err)
	}
	if e.DirtyLeaves() != 0 {
		t.Fatal("Scrub must flush before decoding stored images")
	}
}

// TestWritePipelineWriteAllocs guards the combined-write fast path: once a
// leaf is dirty, further writes into it must not allocate. Monolithic never
// re-encrypts, so the loop stays on the fast path indefinitely.
func TestWritePipelineWriteAllocs(t *testing.T) {
	e := pipeEngine(t, smallCfg(ctr.Monolithic, MACInECC), 0)
	data := block(41)
	if err := e.Write(0, data); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := e.Write(0, data); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("combined write allocates %v times per op, want 0", allocs)
	}
}

func TestEngineStatsAddWritePipeline(t *testing.T) {
	a := EngineStats{WriteCombines: 2, DeferredLeafFlushes: 3, ParallelReencryptWorkers: 4}
	b := EngineStats{WriteCombines: 10, DeferredLeafFlushes: 20, ParallelReencryptWorkers: 30}
	a.Add(b)
	if a.WriteCombines != 12 || a.DeferredLeafFlushes != 23 || a.ParallelReencryptWorkers != 34 {
		t.Fatalf("Add dropped write-pipeline counters: %+v", a)
	}
}

// TestShardedWritePipelineFlushAll exercises the sharded default-on pipeline
// and the concurrent region-wide flush.
func TestShardedWritePipelineFlushAll(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInECC)
	s, err := NewShardedEngine(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	shardBytes := s.ShardBytes()
	for i := 0; i < s.Shards(); i++ {
		base := uint64(i) * shardBytes
		for j := uint64(0); j < 4; j++ { // 4 writes, one leaf per shard
			if err := s.Write(base+j*BlockBytes, block(int64(i)<<8|int64(j))); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := s.Stats()
	if st.WriteCombines != uint64(3*s.Shards()) {
		t.Fatalf("WriteCombines = %d, want %d", st.WriteCombines, 3*s.Shards())
	}
	dirty := 0
	for i := 0; i < s.Shards(); i++ {
		s.WithShard(i, func(e *Engine) { dirty += e.DirtyLeaves() })
	}
	if dirty != s.Shards() {
		t.Fatalf("dirty leaves across shards = %d, want %d", dirty, s.Shards())
	}
	if err := s.FlushAll(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.Shards(); i++ {
		s.WithShard(i, func(e *Engine) {
			if e.DirtyLeaves() != 0 {
				t.Fatalf("shard %d still dirty after FlushAll", i)
			}
		})
	}
	dst := make([]byte, BlockBytes)
	for i := 0; i < s.Shards(); i++ {
		base := uint64(i) * shardBytes
		for j := uint64(0); j < 4; j++ {
			if _, err := s.Read(base+j*BlockBytes, dst); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(dst, block(int64(i)<<8|int64(j))) {
				t.Fatalf("shard %d block %d corrupted", i, j)
			}
		}
	}
}
