package core

import (
	"bytes"
	"errors"
	"testing"

	"authmem/internal/ctr"
	"authmem/internal/dram"
	"authmem/internal/tree"
)

func TestEngineAccessors(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInECC)
	e := newEngine(t, cfg)
	if e.Config().Scheme != ctr.Delta {
		t.Fatal("Config accessor wrong")
	}
	if e.Tree() == nil || e.Tree().Leaves() == 0 {
		t.Fatal("Tree accessor wrong")
	}

	disabled := cfg
	disabled.DisableEncryption = true
	disabled.KeyMaterial = nil
	d := newEngine(t, disabled)
	if d.SchemeStats() != (ctr.Stats{}) {
		t.Fatal("disabled engine should report zero scheme stats")
	}
	if err := d.TamperTreeNode(tree.NodeID{}, 0); err == nil {
		t.Fatal("tree tamper should fail with encryption disabled")
	}
	if err := d.TamperCounterBlock(0, 0); err == nil {
		t.Fatal("counter tamper should fail with encryption disabled")
	}
	if _, err := d.Snapshot(0); err == nil {
		t.Fatal("snapshot should fail with encryption disabled")
	}
}

func TestTamperCounterBlockUnwrittenGroup(t *testing.T) {
	// Tampering the counter block of a group that was never written
	// materializes a corrupt image; reads in that group must fail.
	e := newEngine(t, smallCfg(ctr.Delta, MACInECC))
	if err := e.TamperCounterBlock(3, 100); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, BlockBytes)
	var ie *IntegrityError
	if _, err := e.Read(3*ctr.GroupBlocks*BlockBytes, dst); !errors.As(err, &ie) {
		t.Fatalf("corrupt fresh counter block accepted: %v", err)
	}
}

func TestReplayInlinePlacement(t *testing.T) {
	e := newEngine(t, smallCfg(ctr.Delta, MACInline))
	addr := uint64(0x300)
	old := block(60)
	if err := e.Write(addr, old); err != nil {
		t.Fatal(err)
	}
	snap, err := e.Snapshot(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Write(addr, block(61)); err != nil {
		t.Fatal(err)
	}
	if err := e.Replay(snap); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, BlockBytes)
	var ie *IntegrityError
	if _, err := e.Read(addr, dst); !errors.As(err, &ie) {
		t.Fatalf("inline replay undetected: %v", err)
	}
}

func TestReplaySnapshotOfFreshBlock(t *testing.T) {
	// Snapshot of a never-written block captures only the counter image;
	// replaying it after writes rolls the counters back -> detected.
	e := newEngine(t, smallCfg(ctr.Delta, MACInECC))
	snap, err := e.Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Write(0, block(62)); err != nil {
		t.Fatal(err)
	}
	if err := e.Replay(snap); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, BlockBytes)
	if _, err := e.Read(0, dst); err == nil {
		t.Fatal("counter rollback of fresh snapshot undetected")
	}
}

func TestTimingModelAccessors(t *testing.T) {
	mem := dram.MustNew(dram.DDR3_1600(2))
	tm, err := NewTimingModel(Default(ctr.Delta, MACInECC), mem)
	if err != nil {
		t.Fatal(err)
	}
	if tm.DRAM() != mem {
		t.Fatal("DRAM accessor wrong")
	}
	cfg := Default(ctr.Delta, MACInECC)
	cfg.DisableEncryption = true
	cfg.KeyMaterial = nil
	d, err := NewTimingModel(cfg, mem)
	if err != nil {
		t.Fatal(err)
	}
	if d.MetadataCacheStats().Hits != 0 {
		t.Fatal("disabled model metadata stats should be zero")
	}
	if d.Scheme() != nil {
		t.Fatal("disabled model should have no scheme")
	}
}

func TestPersistWriterFailure(t *testing.T) {
	e := newEngine(t, smallCfg(ctr.Delta, MACInECC))
	if err := e.Write(0, block(63)); err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int{1, 30, 100, 1000} {
		if _, err := e.Persist(&failingWriter{budget: budget}); err == nil {
			t.Fatalf("writer failure at %d bytes not propagated", budget)
		}
	}
}

type failingWriter struct{ budget int }

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.budget -= len(p); w.budget <= 0 {
		return 0, bytes.ErrTooLarge
	}
	return len(p), nil
}

func TestMetaAccessDirtyEvictionWritesBack(t *testing.T) {
	// Thrash the metadata cache with dirty counter blocks (writebacks to
	// many distinct groups) and confirm metadata writebacks reach DRAM.
	tm, err := NewTimingModel(Default(ctr.Delta, MACInECC), dram.MustNew(dram.DDR3_1600(4)))
	if err != nil {
		t.Fatal(err)
	}
	var now uint64
	for i := uint64(0); i < 3000; i++ {
		// One group per iteration: each dirties a distinct counter line.
		now = tm.WriteBack(now, i*uint64(ctr.GroupBlocks)*BlockBytes)
	}
	if tm.Stats().MetaWrites == 0 {
		t.Fatal("no metadata writebacks despite cache thrash")
	}
}
