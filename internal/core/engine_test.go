package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"authmem/internal/ctr"
	"authmem/internal/tree"
)

// smallCfg returns a test-sized configuration (1MB region) so trees stay
// tiny while still spanning many groups.
func smallCfg(scheme ctr.Kind, placement MACPlacement) Config {
	cfg := Default(scheme, placement)
	cfg.RegionBytes = 1 << 20
	return cfg
}

func newEngine(t testing.TB, cfg Config) *Engine {
	t.Helper()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func block(seed int64) []byte {
	b := make([]byte, BlockBytes)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func allDesignPoints() []Config {
	var cfgs []Config
	for _, s := range []ctr.Kind{ctr.Monolithic, ctr.Split, ctr.Delta, ctr.DualLength} {
		for _, p := range []MACPlacement{MACInline, MACInECC} {
			cfgs = append(cfgs, smallCfg(s, p))
		}
	}
	return cfgs
}

func TestConfigValidate(t *testing.T) {
	good := smallCfg(ctr.Delta, MACInECC)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.RegionBytes = 0 },
		func(c *Config) { c.RegionBytes = 100 },
		func(c *Config) { c.RegionBytes = 64 }, // below one group
		func(c *Config) { c.KeyMaterial = nil },
		func(c *Config) { c.MetadataCacheBytes = 0 },
		func(c *Config) { c.MetadataCacheWays = 0 },
		func(c *Config) { c.OnChipTreeBytes = 32 },
		func(c *Config) { c.CorrectBits = 3 },
	}
	for i, mut := range bad {
		c := good
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate", i)
		}
	}
	// DisableEncryption waives the key requirement.
	c := good
	c.KeyMaterial, c.DisableEncryption = nil, true
	if err := c.Validate(); err != nil {
		t.Errorf("disabled-encryption config rejected: %v", err)
	}
}

func TestPlacementString(t *testing.T) {
	if MACInline.String() != "inline-mac" || MACInECC.String() != "mac-in-ecc" {
		t.Fatal("placement names wrong")
	}
	if MACPlacement(7).String() != "MACPlacement(7)" {
		t.Fatal("unknown placement name wrong")
	}
}

func TestWriteReadRoundTripAllDesignPoints(t *testing.T) {
	for _, cfg := range allDesignPoints() {
		e := newEngine(t, cfg)
		name := cfg.Scheme.String() + "/" + cfg.Placement.String()
		rng := rand.New(rand.NewSource(1))
		written := make(map[uint64][]byte)
		for i := 0; i < 500; i++ {
			addr := uint64(rng.Intn(1000)) * BlockBytes
			data := block(rng.Int63())
			if err := e.Write(addr, data); err != nil {
				t.Fatalf("%s: write: %v", name, err)
			}
			written[addr] = data
		}
		dst := make([]byte, BlockBytes)
		for addr, want := range written {
			info, err := e.Read(addr, dst)
			if err != nil {
				t.Fatalf("%s: read %#x: %v", name, addr, err)
			}
			if info.Fresh || !bytes.Equal(dst, want) {
				t.Fatalf("%s: read %#x returned wrong data", name, addr)
			}
		}
	}
}

func TestFreshReadReturnsZeros(t *testing.T) {
	e := newEngine(t, smallCfg(ctr.Delta, MACInECC))
	dst := make([]byte, BlockBytes)
	info, err := e.Read(0x4000, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Fresh {
		t.Fatal("unwritten block not reported fresh")
	}
	for _, b := range dst {
		if b != 0 {
			t.Fatal("fresh read returned nonzero data")
		}
	}
	if e.Stats().FreshReads != 1 {
		t.Fatalf("stats %+v", e.Stats())
	}
}

func TestAddressValidation(t *testing.T) {
	e := newEngine(t, smallCfg(ctr.Delta, MACInECC))
	buf := make([]byte, BlockBytes)
	if err := e.Write(13, buf); err == nil {
		t.Fatal("unaligned write should fail")
	}
	if err := e.Write(1<<20, buf); err == nil {
		t.Fatal("out-of-region write should fail")
	}
	if _, err := e.Read(0, buf[:10]); err == nil {
		t.Fatal("short read buffer should fail")
	}
	if err := e.Write(0, buf[:10]); err == nil {
		t.Fatal("short write should fail")
	}
}

func TestCiphertextActuallyEncrypted(t *testing.T) {
	// The DRAM image must not contain the plaintext.
	e := newEngine(t, smallCfg(ctr.Delta, MACInECC))
	pt := bytes.Repeat([]byte{0xAA}, BlockBytes)
	if err := e.Write(0, pt); err != nil {
		t.Fatal(err)
	}
	ct := e.store.Ciphertext(0)
	if bytes.Equal(ct, pt) {
		t.Fatal("ciphertext equals plaintext")
	}
	// And two writes of the same plaintext give different ciphertexts
	// (counter advanced -> fresh pad).
	first := *(*[BlockBytes]byte)(ct)
	if err := e.Write(0, pt); err != nil {
		t.Fatal(err)
	}
	if *(*[BlockBytes]byte)(e.store.Ciphertext(0)) == first {
		t.Fatal("pad reuse: same ciphertext for two writes of one plaintext")
	}
}

func TestTamperCiphertextDetectedInlineMode(t *testing.T) {
	e := newEngine(t, smallCfg(ctr.Delta, MACInline))
	if err := e.Write(0x80, block(2)); err != nil {
		t.Fatal(err)
	}
	// Three flips in one word beat SEC-DED's guarantee but the MAC (or
	// SEC-DED's double-detect) must still refuse the data.
	for _, bit := range []int{65, 70, 77} {
		if err := e.TamperCiphertext(0x80, bit); err != nil {
			t.Fatal(err)
		}
	}
	dst := make([]byte, BlockBytes)
	_, err := e.Read(0x80, dst)
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("tampering not detected: %v", err)
	}
}

func TestSingleFaultCorrectedInlineMode(t *testing.T) {
	// This test is specifically about SEC-DED's single-bit correction, so
	// pin the codec against an AUTHMEM_ECC_CODEC matrix run selecting the
	// detection-only residue code.
	cfg := smallCfg(ctr.Delta, MACInline)
	cfg.ECCCodec = "secded"
	e := newEngine(t, cfg)
	want := block(3)
	if err := e.Write(0x100, want); err != nil {
		t.Fatal(err)
	}
	if err := e.TamperCiphertext(0x100, 130); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, BlockBytes)
	info, err := e.Read(0x100, dst)
	if err != nil {
		t.Fatal(err)
	}
	if info.CorrectedDataBits != 1 || !bytes.Equal(dst, want) {
		t.Fatalf("SEC-DED correction failed: %+v", info)
	}
}

func TestDoubleFaultInWordCorrectedOnlyByMACInECC(t *testing.T) {
	// Figure 3's key contrast, end to end through the engine.
	for _, placement := range []MACPlacement{MACInline, MACInECC} {
		e := newEngine(t, smallCfg(ctr.Delta, placement))
		want := block(4)
		if err := e.Write(0x140, want); err != nil {
			t.Fatal(err)
		}
		// Two flips within word 0.
		if err := e.TamperCiphertext(0x140, 3); err != nil {
			t.Fatal(err)
		}
		if err := e.TamperCiphertext(0x140, 40); err != nil {
			t.Fatal(err)
		}
		dst := make([]byte, BlockBytes)
		info, err := e.Read(0x140, dst)
		if placement == MACInline {
			if err == nil {
				t.Fatal("SEC-DED corrected a double fault in one word")
			}
		} else {
			if err != nil {
				t.Fatalf("MAC-in-ECC failed to correct: %v", err)
			}
			if info.CorrectedDataBits != 2 || !bytes.Equal(dst, want) {
				t.Fatalf("info %+v", info)
			}
		}
	}
}

func TestECCLaneFaultCorrected(t *testing.T) {
	e := newEngine(t, smallCfg(ctr.Delta, MACInECC))
	want := block(5)
	if err := e.Write(0x180, want); err != nil {
		t.Fatal(err)
	}
	if err := e.TamperECCLane(0x180, 22); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, BlockBytes)
	info, err := e.Read(0x180, dst)
	if err != nil {
		t.Fatal(err)
	}
	if info.CorrectedMACBits != 1 || !bytes.Equal(dst, want) {
		t.Fatalf("info %+v", info)
	}
}

func TestTamperCounterBlockDetected(t *testing.T) {
	for _, scheme := range []ctr.Kind{ctr.Monolithic, ctr.Split, ctr.Delta, ctr.DualLength} {
		e := newEngine(t, smallCfg(scheme, MACInECC))
		if err := e.Write(0, block(6)); err != nil {
			t.Fatal(err)
		}
		if err := e.TamperCounterBlock(0, 5); err != nil {
			t.Fatal(err)
		}
		dst := make([]byte, BlockBytes)
		_, err := e.Read(0, dst)
		var ie *IntegrityError
		if !errors.As(err, &ie) {
			t.Fatalf("%s: counter tamper undetected: %v", scheme, err)
		}
	}
}

func TestTamperTreeNodeDetected(t *testing.T) {
	// Shrink the on-chip budget so the tree actually has off-chip levels
	// at this region size (256 leaves -> 32 -> 4 -> 1 on-chip).
	cfg := smallCfg(ctr.Delta, MACInECC)
	cfg.OnChipTreeBytes = 64
	e := newEngine(t, cfg)
	if err := e.Write(0, block(7)); err != nil {
		t.Fatal(err)
	}
	if err := e.TamperTreeNode(tree.NodeID{Level: 0, Index: 0}, 9); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, BlockBytes)
	if _, err := e.Read(0, dst); err == nil {
		t.Fatal("tree tamper undetected")
	}
}

func TestReplayAttackDetected(t *testing.T) {
	// The canonical attack: snapshot (data, MAC, counter block), let the
	// victim overwrite, restore the snapshot. The counters check out
	// against their own MACs — only the tree can catch it.
	for _, scheme := range []ctr.Kind{ctr.Split, ctr.Delta, ctr.DualLength} {
		e := newEngine(t, smallCfg(scheme, MACInECC))
		addr := uint64(0x200)
		old := []byte("old secret value................................................")[:BlockBytes]
		if err := e.Write(addr, old); err != nil {
			t.Fatal(err)
		}
		snap, err := e.Snapshot(addr)
		if err != nil {
			t.Fatal(err)
		}
		fresh := block(8)
		if err := e.Write(addr, fresh); err != nil {
			t.Fatal(err)
		}
		if err := e.Replay(snap); err != nil {
			t.Fatal(err)
		}
		dst := make([]byte, BlockBytes)
		_, err = e.Read(addr, dst)
		var ie *IntegrityError
		if !errors.As(err, &ie) {
			t.Fatalf("%s: replay attack succeeded: %v", scheme, err)
		}
	}
}

func TestReencryptionPreservesData(t *testing.T) {
	// Force group re-encryptions by hammering one block; every other
	// block's data must survive bit-exactly, including across the counter
	// jump.
	for _, scheme := range []ctr.Kind{ctr.Split, ctr.Delta, ctr.DualLength} {
		for _, placement := range []MACPlacement{MACInline, MACInECC} {
			e := newEngine(t, smallCfg(scheme, placement))
			neighbors := map[uint64][]byte{}
			for i := uint64(1); i < 8; i++ {
				d := block(int64(100 + i))
				if err := e.Write(i*BlockBytes, d); err != nil {
					t.Fatal(err)
				}
				neighbors[i*BlockBytes] = d
			}
			hot := block(200)
			for i := 0; i < 1200; i++ {
				if err := e.Write(0, hot); err != nil {
					t.Fatal(err)
				}
			}
			if e.SchemeStats().Reencryptions == 0 {
				t.Fatalf("%s: no re-encryption after 1200 hot writes", scheme)
			}
			dst := make([]byte, BlockBytes)
			for addr, want := range neighbors {
				if _, err := e.Read(addr, dst); err != nil {
					t.Fatalf("%s/%s: read %#x after re-encryption: %v",
						scheme, placement, addr, err)
				}
				if !bytes.Equal(dst, want) {
					t.Fatalf("%s/%s: block %#x corrupted by re-encryption",
						scheme, placement, addr)
				}
			}
			if _, err := e.Read(0, dst); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(dst, hot) {
				t.Fatal("hot block lost its last write")
			}
		}
	}
}

func TestReencryptionMaterializesZeros(t *testing.T) {
	// Never-written neighbors must still read as zeros after their group
	// was re-encrypted (their counters advanced).
	e := newEngine(t, smallCfg(ctr.Delta, MACInECC))
	for i := 0; i < 1200; i++ {
		if err := e.Write(0, block(9)); err != nil {
			t.Fatal(err)
		}
	}
	if e.SchemeStats().Reencryptions == 0 {
		t.Fatal("no re-encryption")
	}
	dst := make([]byte, BlockBytes)
	info, err := e.Read(7*BlockBytes, dst)
	if err != nil {
		t.Fatal(err)
	}
	if info.Fresh {
		t.Fatal("materialized block still reported fresh")
	}
	for _, b := range dst {
		if b != 0 {
			t.Fatal("materialized block should decrypt to zeros")
		}
	}
}

func TestDisabledEncryptionPassthrough(t *testing.T) {
	cfg := smallCfg(ctr.Delta, MACInECC)
	cfg.DisableEncryption = true
	cfg.KeyMaterial = nil
	e := newEngine(t, cfg)
	want := block(10)
	if err := e.Write(0x40, want); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, BlockBytes)
	if _, err := e.Read(0x40, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, want) {
		t.Fatal("passthrough corrupted data")
	}
	// Stored image IS the plaintext (no encryption).
	if !bytes.Equal(e.store.Ciphertext(1), want) {
		t.Fatal("disabled encryption should store plaintext")
	}
	if err := e.TamperCiphertext(0x40, 0); err == nil {
		t.Fatal("attack APIs should be disabled")
	}
	if _, err := e.Scrub(); err == nil {
		t.Fatal("scrub should require MACInECC")
	}
}

func TestScrubFindsAndRepairsFaults(t *testing.T) {
	e := newEngine(t, smallCfg(ctr.Delta, MACInECC))
	for i := uint64(0); i < 20; i++ {
		if err := e.Write(i*BlockBytes, block(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Inject single-bit faults into three blocks.
	for _, blk := range []uint64{2, 9, 17} {
		if err := e.TamperCiphertext(blk*BlockBytes, int(blk)*7%512); err != nil {
			t.Fatal(err)
		}
	}
	r, err := e.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if r.BlocksScanned != 20 || r.ParityFlagged != 3 || r.Corrected != 3 || r.Uncorrectable != 0 {
		t.Fatalf("scrub report %+v", r)
	}
	// Everything reads clean afterwards, with no further corrections.
	dst := make([]byte, BlockBytes)
	for i := uint64(0); i < 20; i++ {
		info, err := e.Read(i*BlockBytes, dst)
		if err != nil {
			t.Fatal(err)
		}
		if info.CorrectedDataBits != 0 {
			t.Fatalf("block %d still dirty after scrub", i)
		}
	}
	// A second pass finds nothing.
	r2, err := e.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if r2.ParityFlagged != 0 {
		t.Fatalf("second scrub flagged %d", r2.ParityFlagged)
	}
}

func TestScrubMissesEvenWeightFaults(t *testing.T) {
	// Documented parity limitation: 2 flips hide from the scrub screen
	// but are caught (and here corrected) on the demand read.
	e := newEngine(t, smallCfg(ctr.Delta, MACInECC))
	want := block(11)
	if err := e.Write(0, want); err != nil {
		t.Fatal(err)
	}
	if err := e.TamperCiphertext(0, 10); err != nil {
		t.Fatal(err)
	}
	if err := e.TamperCiphertext(0, 300); err != nil {
		t.Fatal(err)
	}
	r, err := e.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if r.ParityFlagged != 0 {
		t.Fatal("even-weight fault should evade the parity screen")
	}
	dst := make([]byte, BlockBytes)
	info, err := e.Read(0, dst)
	if err != nil {
		t.Fatal(err)
	}
	if info.CorrectedDataBits != 2 || !bytes.Equal(dst, want) {
		t.Fatalf("demand read did not repair: %+v", info)
	}
}

func TestAttackAPIValidation(t *testing.T) {
	e := newEngine(t, smallCfg(ctr.Delta, MACInECC))
	if err := e.TamperCiphertext(0, 0); err == nil {
		t.Fatal("tamper of non-resident block should fail")
	}
	if err := e.Write(0, block(12)); err != nil {
		t.Fatal(err)
	}
	if err := e.TamperCiphertext(0, 512); err == nil {
		t.Fatal("bit out of range should fail")
	}
	if err := e.TamperCiphertext(3, 0); err == nil {
		t.Fatal("unaligned address should fail")
	}
	if err := e.TamperInlineTag(0, 0); err == nil {
		t.Fatal("inline tamper under MACInECC should fail")
	}
	if err := e.TamperCounterBlock(1<<40, 0); err == nil {
		t.Fatal("metadata index out of range should fail")
	}
	if err := e.TamperCounterBlock(0, -1); err == nil {
		t.Fatal("negative bit should fail")
	}

	inline := newEngine(t, smallCfg(ctr.Delta, MACInline))
	if err := inline.Write(0, block(13)); err != nil {
		t.Fatal(err)
	}
	if err := inline.TamperECCLane(0, 0); err == nil {
		t.Fatal("ECC-lane tamper under MACInline should fail")
	}
	if err := inline.TamperInlineTag(0, 64); err == nil {
		t.Fatal("tag bit out of range should fail")
	}
}

func TestTamperInlineTagDetected(t *testing.T) {
	e := newEngine(t, smallCfg(ctr.Delta, MACInline))
	if err := e.Write(0, block(14)); err != nil {
		t.Fatal(err)
	}
	if err := e.TamperInlineTag(0, 12); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, BlockBytes)
	if _, err := e.Read(0, dst); err == nil {
		t.Fatal("inline tag tamper undetected")
	}
}

func TestIntegrityErrorMessage(t *testing.T) {
	e := &IntegrityError{Addr: 0x40, Reason: "test"}
	if e.Error() != "core: integrity violation at 0x40: test" {
		t.Fatalf("message %q", e.Error())
	}
}

func TestStatsAccumulate(t *testing.T) {
	e := newEngine(t, smallCfg(ctr.Delta, MACInECC))
	if err := e.Write(0, block(15)); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, BlockBytes)
	if _, err := e.Read(0, dst); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Read(64, dst); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Writes != 1 || st.Reads != 2 || st.FreshReads != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func BenchmarkEngineWrite(b *testing.B) {
	e := newEngine(b, smallCfg(ctr.Delta, MACInECC))
	data := block(20)
	b.SetBytes(BlockBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Write(uint64(i%4096)*BlockBytes, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineRead(b *testing.B) {
	e := newEngine(b, smallCfg(ctr.Delta, MACInECC))
	data := block(21)
	for i := 0; i < 4096; i++ {
		if err := e.Write(uint64(i)*BlockBytes, data); err != nil {
			b.Fatal(err)
		}
	}
	dst := make([]byte, BlockBytes)
	b.SetBytes(BlockBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Read(uint64(i%4096)*BlockBytes, dst); err != nil {
			b.Fatal(err)
		}
	}
}

func TestScrubFindsMACFaults(t *testing.T) {
	// §3.3: the scrubber's second parity screen catches single-bit faults
	// in the MAC/Hamming bits without recomputing any MAC.
	e := newEngine(t, smallCfg(ctr.Delta, MACInECC))
	for i := uint64(0); i < 10; i++ {
		if err := e.Write(i*BlockBytes, block(int64(40+i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.TamperECCLane(3*BlockBytes, 17); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.ParityFlagged != 1 || rep.Corrected != 1 {
		t.Fatalf("scrub report %+v", rep)
	}
	dst := make([]byte, BlockBytes)
	info, err := e.Read(3*BlockBytes, dst)
	if err != nil {
		t.Fatal(err)
	}
	if info.CorrectedMACBits != 0 {
		t.Fatal("MAC fault should have been repaired by the scrub")
	}
}
