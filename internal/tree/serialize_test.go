package tree

import (
	"bytes"
	"testing"
)

func TestSerializeRoundTrip(t *testing.T) {
	src := buildTree(t, 1234, 3<<10)
	var buf bytes.Buffer
	n, err := src.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}

	dst, err := New(testKey(t), 1234, 3<<10)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dst.ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m != n {
		t.Fatalf("ReadFrom consumed %d of %d bytes", m, n)
	}
	// Every leaf verifies against the restored tree.
	for _, i := range []uint64{0, 7, 500, 1233} {
		if _, err := dst.VerifyLeaf(i, leafImg(i)); err != nil {
			t.Fatalf("leaf %d after restore: %v", i, err)
		}
	}
}

func TestReadFromGeometryMismatch(t *testing.T) {
	src := buildTree(t, 1000, 3<<10)
	var buf bytes.Buffer
	if _, err := src.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Different leaf count -> different level sizes.
	other, err := New(testKey(t), 5000, 3<<10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.ReadFrom(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("geometry mismatch should fail")
	}
	// Different on-chip budget -> different level count.
	big := buildTree(t, 100000, 3<<10)
	small, err := New(testKey(t), 100000, 64)
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if _, err := big.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if _, err := small.ReadFrom(bytes.NewReader(buf2.Bytes())); err == nil {
		t.Fatal("level-count mismatch should fail")
	}
}

func TestReadFromTruncated(t *testing.T) {
	src := buildTree(t, 300, 3<<10)
	var buf bytes.Buffer
	if _, err := src.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{0, 4, 9, len(data) / 2, len(data) - 1} {
		dst, err := New(testKey(t), 300, 3<<10)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dst.ReadFrom(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestTopLevelIsACopy(t *testing.T) {
	tr := buildTree(t, 100, 3<<10)
	top := tr.TopLevel()
	if len(top) == 0 {
		t.Fatal("empty top level")
	}
	top[0] ^= 0xFF
	// Mutating the copy must not corrupt the tree.
	if _, err := tr.VerifyLeaf(0, leafImg(0)); err != nil {
		t.Fatal("TopLevel returned a live reference")
	}
}

func TestRestoredTamperStillDetected(t *testing.T) {
	// Corruption applied to the serialized bytes surfaces as verification
	// failure after restore.
	src := buildTree(t, 512, 3<<10)
	var buf bytes.Buffer
	if _, err := src.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[20] ^= 0x10 // somewhere in level 0's nodes

	dst, err := New(testKey(t), 512, 3<<10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dst.ReadFrom(bytes.NewReader(data)); err != nil {
		t.Fatal(err) // structurally valid, cryptographically broken
	}
	var failures int
	for i := uint64(0); i < 512; i++ {
		if _, err := dst.VerifyLeaf(i, leafImg(i)); err != nil {
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("serialized-state tampering went undetected")
	}
}

type failWriter struct{ after int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.after -= len(p); w.after <= 0 {
		return 0, bytes.ErrTooLarge
	}
	return len(p), nil
}

func TestWriteToPropagatesErrors(t *testing.T) {
	tr := buildTree(t, 300, 3<<10)
	for _, budget := range []int{1, 10, 100} {
		if _, err := tr.WriteTo(&failWriter{after: budget}); err == nil {
			t.Fatalf("write failure at %d bytes not propagated", budget)
		}
	}
}
