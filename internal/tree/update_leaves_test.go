package tree

import (
	"bytes"
	"math/rand"
	"testing"

	"authmem/internal/mac"
)

func updateTestKey(t *testing.T) *mac.Key {
	t.Helper()
	material := make([]byte, 24)
	for i := range material {
		material[i] = byte(i*31 + 7)
	}
	k, err := mac.NewKey(material)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// treeState serializes a tree's node levels for whole-state comparison.
func treeState(t *testing.T, tr *Tree) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestUpdateLeavesMatchesPerLeaf drives a batched update and the equivalent
// per-leaf updates over identical trees and requires bit-identical node
// state, across several geometries and batch shapes (random subsets,
// duplicates, sibling-heavy clusters, the full leaf set).
func TestUpdateLeavesMatchesPerLeaf(t *testing.T) {
	key := updateTestKey(t)
	rng := rand.New(rand.NewSource(41))

	for _, leaves := range []uint64{1, 7, 8, 9, 64, 513, 4096} {
		images := make(map[uint64][]byte)
		imageOf := func(i uint64) []byte {
			img, ok := images[i]
			if !ok {
				img = make([]byte, NodeBytes)
				images[i] = img
			}
			return img
		}

		a, err := New(key, leaves, 3<<10)
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(key, leaves, 3<<10)
		if err != nil {
			t.Fatal(err)
		}

		batches := [][]uint64{
			nil,                   // empty batch: no-op
			{0},                   // single leaf: the fast-path delegation
			{0, 0, leaves - 1, 0}, // duplicates
		}
		// Sibling-heavy cluster plus a random scatter.
		var cluster []uint64
		for i := uint64(0); i < leaves && i < 24; i++ {
			cluster = append(cluster, i)
		}
		batches = append(batches, cluster)
		var scatter []uint64
		for i := 0; i < 32; i++ {
			scatter = append(scatter, rng.Uint64()%leaves)
		}
		batches = append(batches, scatter)
		full := make([]uint64, leaves)
		for i := range full {
			full[i] = uint64(i)
		}
		batches = append(batches, full)

		for bi, batch := range batches {
			for _, i := range batch {
				rng.Read(imageOf(i))
			}
			for _, i := range batch {
				if err := a.UpdateLeafFast(i, imageOf(i)); err != nil {
					t.Fatal(err)
				}
			}
			// UpdateLeaves uses its argument as scratch; pass a copy so the
			// batch stays comparable across iterations.
			scratch := append([]uint64(nil), batch...)
			if err := b.UpdateLeaves(scratch, imageOf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(treeState(t, a), treeState(t, b)) {
				t.Fatalf("leaves=%d batch %d: batched update diverged from per-leaf updates", leaves, bi)
			}
			for _, i := range batch {
				if err := b.VerifyLeafFast(i, imageOf(i)); err != nil {
					t.Fatalf("leaves=%d batch %d: leaf %d fails verification after batch update: %v", leaves, bi, i, err)
				}
			}
		}
	}
}

// TestUpdateLeavesRejectsBadInput pins the error paths: out-of-range leaves
// and wrong-size images must fail, as the per-leaf path does.
func TestUpdateLeavesRejectsBadInput(t *testing.T) {
	key := updateTestKey(t)
	tr, err := New(key, 16, 3<<10)
	if err != nil {
		t.Fatal(err)
	}
	img := make([]byte, NodeBytes)
	if err := tr.UpdateLeaves([]uint64{3, 99}, func(uint64) []byte { return img }); err == nil {
		t.Fatal("out-of-range leaf accepted")
	}
	short := make([]byte, NodeBytes-1)
	if err := tr.UpdateLeaves([]uint64{3, 4}, func(uint64) []byte { return short }); err == nil {
		t.Fatal("short image accepted")
	}
}
