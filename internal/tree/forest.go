// Forest: the sharded engine's combining layer.
//
// A sharded memory partitions the protected region into N shards, each with
// its own Bonsai Merkle subtree whose trusted top level lives in that
// shard's SRAM. The forest is the tiny on-chip structure above them: it
// hashes the N subtree roots into one combined digest, so the whole
// memory's freshness is still pinned by a single trusted value (for
// persist/resume and attestation) while every per-access tree walk stays
// inside one shard — no cross-shard synchronization on the hot path.
//
// This is exactly how split-counter and BMT designs scale metadata: the
// partitioning is by address range, the per-partition structures are
// independent, and only a constant-size trusted summary spans them.
package tree

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// forestDomain separates the combined digest's hash domain from raw
// top-level digests, so a 1-shard combined root equals the shard root (v1
// image compatibility) but multi-shard roots can never collide with any
// single shard's.
var forestDomain = []byte("authmem/forest/v1\x00")

// CombineRoots hashes per-shard root digests into the forest's single
// trusted digest. With one shard the digest passes through unchanged, so a
// single-shard forest pins images exactly as the monolithic engine does.
func CombineRoots(shardRoots [][sha256.Size]byte) [sha256.Size]byte {
	if len(shardRoots) == 1 {
		return shardRoots[0]
	}
	h := sha256.New()
	h.Write(forestDomain)
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(shardRoots)))
	h.Write(n[:])
	for _, r := range shardRoots {
		h.Write(r[:])
	}
	var out [sha256.Size]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Forest is a live view over per-shard subtrees. It holds no state of its
// own — the combined root is always derived from the current subtree top
// levels, mirroring combinational on-chip logic.
type Forest struct {
	trees []*Tree
}

// NewForest builds a forest over the given subtrees.
func NewForest(trees []*Tree) (*Forest, error) {
	if len(trees) == 0 {
		return nil, fmt.Errorf("tree: forest needs at least one subtree")
	}
	for i, t := range trees {
		if t == nil {
			return nil, fmt.Errorf("tree: forest subtree %d is nil", i)
		}
	}
	return &Forest{trees: trees}, nil
}

// Shards returns the number of subtrees.
func (f *Forest) Shards() int { return len(f.trees) }

// Tree returns subtree i.
func (f *Forest) Tree(i int) *Tree { return f.trees[i] }

// ShardRoot returns the digest of subtree i's trusted top level.
func (f *Forest) ShardRoot(i int) [sha256.Size]byte {
	return sha256.Sum256(f.trees[i].TopLevel())
}

// Root returns the combined trusted digest over all subtree roots.
func (f *Forest) Root() [sha256.Size]byte {
	roots := make([][sha256.Size]byte, len(f.trees))
	for i := range f.trees {
		roots[i] = f.ShardRoot(i)
	}
	return CombineRoots(roots)
}

// TotalOffChipBytes sums the DRAM footprint of every subtree's off-chip
// levels, for storage accounting.
func (f *Forest) TotalOffChipBytes() uint64 {
	var total uint64
	for _, t := range f.trees {
		total += t.TotalOffChipBytes()
	}
	return total
}
