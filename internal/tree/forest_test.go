package tree

import (
	"crypto/sha256"
	"testing"

	"authmem/internal/mac"
)

func forestKey(t *testing.T) *mac.Key {
	t.Helper()
	k, err := mac.NewKey([]byte("0123456789abcdefghijklmn"))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func buildForestTree(t *testing.T, key *mac.Key, leaves uint64) *Tree {
	t.Helper()
	tr, err := New(key, leaves, 3<<10)
	if err != nil {
		t.Fatal(err)
	}
	zero := make([]byte, NodeBytes)
	if err := tr.Rebuild(func(uint64) []byte { return zero }); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestCombineRootsSingleShardPassthrough(t *testing.T) {
	key := forestKey(t)
	tr := buildForestTree(t, key, 64)
	shardRoot := sha256.Sum256(tr.TopLevel())
	if got := CombineRoots([][sha256.Size]byte{shardRoot}); got != shardRoot {
		t.Fatal("single-shard combined root must equal the shard root (v1 compatibility)")
	}
}

func TestForestRootBindsEveryShard(t *testing.T) {
	key := forestKey(t)
	trees := []*Tree{buildForestTree(t, key, 64), buildForestTree(t, key, 64), buildForestTree(t, key, 64), buildForestTree(t, key, 64)}
	f, err := NewForest(trees)
	if err != nil {
		t.Fatal(err)
	}
	base := f.Root()

	// A leaf update in any single shard must change the combined root.
	img := make([]byte, NodeBytes)
	img[0] = 0xAB
	for i := 0; i < f.Shards(); i++ {
		if err := trees[i].UpdateLeafFast(uint64(i*3), img); err != nil {
			t.Fatal(err)
		}
		next := f.Root()
		if next == base {
			t.Fatalf("shard %d update did not change the combined root", i)
		}
		base = next
	}
}

func TestForestRootDependsOnShardOrder(t *testing.T) {
	key := forestKey(t)
	a, b := buildForestTree(t, key, 64), buildForestTree(t, key, 128)
	f1, _ := NewForest([]*Tree{a, b})
	f2, _ := NewForest([]*Tree{b, a})
	if f1.Root() == f2.Root() {
		t.Fatal("swapping shard order must change the combined root")
	}
}

func TestForestMultiShardRootDiffersFromAnyShardRoot(t *testing.T) {
	key := forestKey(t)
	trees := []*Tree{buildForestTree(t, key, 64), buildForestTree(t, key, 64)}
	f, _ := NewForest(trees)
	root := f.Root()
	for i := range trees {
		if root == f.ShardRoot(i) {
			t.Fatalf("combined root collides with shard %d root (missing domain separation)", i)
		}
	}
}

func TestNewForestRejectsEmptyAndNil(t *testing.T) {
	if _, err := NewForest(nil); err == nil {
		t.Fatal("empty forest accepted")
	}
	if _, err := NewForest([]*Tree{nil}); err == nil {
		t.Fatal("nil subtree accepted")
	}
}
