package tree

import (
	"crypto/sha256"
	"testing"

	"authmem/internal/mac"
)

func forestKey(t *testing.T) *mac.Key {
	t.Helper()
	k, err := mac.NewKey([]byte("0123456789abcdefghijklmn"))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func buildForestTree(t *testing.T, key *mac.Key, leaves uint64) *Tree {
	t.Helper()
	tr, err := New(key, leaves, 3<<10)
	if err != nil {
		t.Fatal(err)
	}
	zero := make([]byte, NodeBytes)
	if err := tr.Rebuild(func(uint64) []byte { return zero }); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestCombineRootsSingleShardPassthrough(t *testing.T) {
	key := forestKey(t)
	tr := buildForestTree(t, key, 64)
	shardRoot := sha256.Sum256(tr.TopLevel())
	if got := CombineRoots([][sha256.Size]byte{shardRoot}); got != shardRoot {
		t.Fatal("single-shard combined root must equal the shard root (v1 compatibility)")
	}
}

func TestForestRootBindsEveryShard(t *testing.T) {
	key := forestKey(t)
	trees := []*Tree{buildForestTree(t, key, 64), buildForestTree(t, key, 64), buildForestTree(t, key, 64), buildForestTree(t, key, 64)}
	f, err := NewForest(trees)
	if err != nil {
		t.Fatal(err)
	}
	base := f.Root()

	// A leaf update in any single shard must change the combined root.
	img := make([]byte, NodeBytes)
	img[0] = 0xAB
	for i := 0; i < f.Shards(); i++ {
		if err := trees[i].UpdateLeafFast(uint64(i*3), img); err != nil {
			t.Fatal(err)
		}
		next := f.Root()
		if next == base {
			t.Fatalf("shard %d update did not change the combined root", i)
		}
		base = next
	}
}

func TestForestRootDependsOnShardOrder(t *testing.T) {
	key := forestKey(t)
	a, b := buildForestTree(t, key, 64), buildForestTree(t, key, 128)
	f1, _ := NewForest([]*Tree{a, b})
	f2, _ := NewForest([]*Tree{b, a})
	if f1.Root() == f2.Root() {
		t.Fatal("swapping shard order must change the combined root")
	}
}

func TestForestMultiShardRootDiffersFromAnyShardRoot(t *testing.T) {
	key := forestKey(t)
	trees := []*Tree{buildForestTree(t, key, 64), buildForestTree(t, key, 64)}
	f, _ := NewForest(trees)
	root := f.Root()
	for i := range trees {
		if root == f.ShardRoot(i) {
			t.Fatalf("combined root collides with shard %d root (missing domain separation)", i)
		}
	}
}

// syntheticRoots builds n distinct, deterministic shard roots without the
// cost of real trees — CombineRoots only sees digests, so exercising it at
// cluster-scale shard counts needs nothing heavier.
func syntheticRoots(n int) [][sha256.Size]byte {
	roots := make([][sha256.Size]byte, n)
	for i := range roots {
		roots[i] = sha256.Sum256([]byte{byte(i), byte(i >> 8), 0x5A})
	}
	return roots
}

// TestCombineRootsShardCounts pins determinism and pairwise distinctness
// across awkward shard counts: non-powers-of-two, primes, and the 64+ range
// a cluster attestation combines (one root per node, nodes sharded 2-16
// ways). Counts must also be part of the digest — a prefix of a larger set
// can never combine to the same value as the full set.
func TestCombineRootsShardCounts(t *testing.T) {
	counts := []int{2, 3, 5, 7, 12, 31, 33, 64, 65, 100, 127, 257}
	seen := make(map[[sha256.Size]byte]int, len(counts))
	all := syntheticRoots(300)
	for _, n := range counts {
		roots := all[:n]
		got := CombineRoots(roots)
		if again := CombineRoots(roots); again != got {
			t.Fatalf("n=%d: CombineRoots is not deterministic", n)
		}
		if prev, dup := seen[got]; dup {
			t.Fatalf("n=%d combined root collides with n=%d (count not bound into digest)", n, prev)
		}
		seen[got] = n
		for i := 0; i < n; i++ {
			if got == roots[i] {
				t.Fatalf("n=%d: combined root equals shard %d root", n, i)
			}
		}
	}
}

// TestCombineRootsPerturbAnyShard is the property the cluster's combined
// attestation rests on: flipping any single bit of any single shard root
// changes the combined digest. Checked exhaustively over shards at a
// non-power-of-two count, one probe bit per byte.
func TestCombineRootsPerturbAnyShard(t *testing.T) {
	const n = 65 // 64+ and odd: past any accidental power-of-two alignment
	roots := syntheticRoots(n)
	base := CombineRoots(roots)
	for shard := 0; shard < n; shard++ {
		for byteIdx := 0; byteIdx < sha256.Size; byteIdx++ {
			roots[shard][byteIdx] ^= 1 << (byteIdx % 8)
			if CombineRoots(roots) == base {
				t.Fatalf("perturbing shard %d byte %d left the combined root unchanged", shard, byteIdx)
			}
			roots[shard][byteIdx] ^= 1 << (byteIdx % 8)
		}
		if CombineRoots(roots) != base {
			t.Fatalf("shard %d: perturbation cleanup failed", shard)
		}
	}
}

// TestCombineRootsOrderAt64Plus extends the order-dependence check to the
// counts a cluster actually combines.
func TestCombineRootsOrderAt64Plus(t *testing.T) {
	roots := syntheticRoots(96)
	base := CombineRoots(roots)
	swapped := append([][sha256.Size]byte(nil), roots...)
	swapped[0], swapped[95] = swapped[95], swapped[0]
	if CombineRoots(swapped) == base {
		t.Fatal("swapping shard roots 0 and 95 must change the combined digest")
	}
}

func TestNewForestRejectsEmptyAndNil(t *testing.T) {
	if _, err := NewForest(nil); err == nil {
		t.Fatal("empty forest accepted")
	}
	if _, err := NewForest([]*Tree{nil}); err == nil {
		t.Fatal("nil subtree accepted")
	}
}
