// Package tree implements a Bonsai Merkle tree (Rogers et al., MICRO'07)
// over counter-metadata blocks.
//
// The tree's job is replay protection: the attacker controls off-chip DRAM,
// so counters could be rolled back together with data and MACs. Because
// each data MAC binds the block's counter (see internal/mac), protecting
// counter *integrity* transitively protects data freshness — and counters
// are tiny compared to data, hence a "bonsai" tree.
//
// Geometry: leaves are 64-byte counter blocks. Each internal node is itself
// a 64-byte block holding the 8 64-bit MAC slots of its children (arity 8).
// Levels shrink by 8x until the level fits the on-chip SRAM budget (3KB in
// the paper's Table 1); that top level is trusted and not stored in DRAM.
//
// The paper's headline interaction: delta-encoding packs 64 counters per
// block instead of 8, shrinking the leaf count 8x and the off-chip tree by
// one full level (5 -> 4 levels for a 512MB protected region, §5.2).
package tree

import (
	"encoding/binary"
	"fmt"
	"slices"
)

// Arity is the tree fan-out: 8 64-bit child MACs per 64-byte node.
const Arity = 8

// NodeBytes is the size of one tree node.
const NodeBytes = 64

// ErrTampered is the error type returned when verification fails.
type ErrTampered struct {
	// Level is the tree level at which the mismatch was detected
	// (0 = the leaf image itself).
	Level int
	// Index is the node index within that level.
	Index uint64
}

// Error implements error.
func (e *ErrTampered) Error() string {
	return fmt.Sprintf("tree: integrity violation at level %d node %d", e.Level, e.Index)
}

// Hasher is the slice of the MAC surface the tree needs: one keyed tag per
// node image. *mac.Key and every crypto.Backend MAC satisfy it, so the tree
// is backend-agnostic.
type Hasher interface {
	Tag(image []byte, addr, counter uint64) (uint64, error)
}

// Tree is a Bonsai Merkle tree. Node storage below the top level models
// off-chip DRAM: it is exported to attack via CorruptNode, and verification
// never trusts it. The top level models on-chip SRAM and is trusted.
type Tree struct {
	key    Hasher
	leaves uint64

	// levels[k] holds level k+1's node images (level 0 is the leaves,
	// which live outside the tree). levels[len-1] is the on-chip level.
	levels [][]byte

	// counts[k] is the node count of levels[k].
	counts []uint64
}

// New builds a zero-initialized tree over numLeaves counter blocks with the
// given on-chip budget in bytes. The initial images correspond to all-zero
// leaves only after Rebuild or per-leaf updates; callers normally Rebuild
// once after construction.
func New(key Hasher, numLeaves uint64, onChipBytes int) (*Tree, error) {
	if key == nil {
		return nil, fmt.Errorf("tree: nil key")
	}
	if numLeaves == 0 {
		return nil, fmt.Errorf("tree: need at least one leaf")
	}
	if onChipBytes < NodeBytes {
		return nil, fmt.Errorf("tree: on-chip budget %dB below one node", onChipBytes)
	}
	t := &Tree{key: key, leaves: numLeaves}
	onChipNodes := uint64(onChipBytes / NodeBytes)
	n := numLeaves
	for {
		n = (n + Arity - 1) / Arity
		t.levels = append(t.levels, make([]byte, n*NodeBytes))
		t.counts = append(t.counts, n)
		if n <= onChipNodes {
			break
		}
	}
	return t, nil
}

// Leaves returns the number of leaves.
func (t *Tree) Leaves() uint64 { return t.leaves }

// Levels returns the number of node levels, including the on-chip level.
func (t *Tree) Levels() int { return len(t.levels) }

// OffChipLevels returns how many levels of tree nodes reside in DRAM
// (everything below the trusted on-chip level). A full cold verification
// therefore costs OffChipLevels() node reads in addition to the leaf read —
// matching the paper's "5-level off-chip integrity tree" accounting when
// the leaf (counter block) read is counted as one of the levels.
func (t *Tree) OffChipLevels() int { return len(t.levels) - 1 }

// NodesAtLevel returns the node count of node level k (0-based, where level
// 0 is the first level above the leaves).
func (t *Tree) NodesAtLevel(k int) uint64 { return t.counts[k] }

// TotalOffChipBytes returns the DRAM footprint of the off-chip node levels,
// for the Figure 1 storage accounting.
func (t *Tree) TotalOffChipBytes() uint64 {
	var total uint64
	for k := 0; k < len(t.levels)-1; k++ {
		total += t.counts[k] * NodeBytes
	}
	return total
}

// nodeTag computes the MAC of a 64-byte image at (level, index). Level and
// index are bound into the MAC's address input so identical images at
// different tree positions authenticate differently (no node-swap attacks).
func (t *Tree) nodeTag(level int, index uint64, image []byte) uint64 {
	// Address-space encoding: level in the top bits, index below.
	addr := uint64(level)<<56 | index
	tag, err := t.key.Tag(image, addr, 0)
	if err != nil {
		// Images are always NodeBytes; an error is a bug.
		panic(err)
	}
	return tag
}

func (t *Tree) node(level int, index uint64) []byte {
	return t.levels[level][index*NodeBytes : (index+1)*NodeBytes]
}

func slot(image []byte, i uint64) uint64 {
	return binary.LittleEndian.Uint64(image[i*8:])
}

func setSlot(image []byte, i uint64, v uint64) {
	binary.LittleEndian.PutUint64(image[i*8:], v)
}

// UpdateLeaf installs a new image for leaf i, recomputing the MAC path up to
// the on-chip level. It returns the list of off-chip node indices touched
// (for the caller's timing model): one flat NodeID per off-chip level.
func (t *Tree) UpdateLeaf(i uint64, image []byte) ([]NodeID, error) {
	if i >= t.leaves {
		return nil, fmt.Errorf("tree: leaf %d out of range (%d leaves)", i, t.leaves)
	}
	if len(image) != NodeBytes {
		return nil, fmt.Errorf("tree: leaf image must be %d bytes", NodeBytes)
	}
	touched := make([]NodeID, 0, len(t.levels)-1)
	tag := t.nodeTag(0, i, image)
	idx := i
	for k := 0; k < len(t.levels); k++ {
		parent := idx / Arity
		node := t.node(k, parent)
		setSlot(node, idx%Arity, tag)
		if k < len(t.levels)-1 {
			touched = append(touched, NodeID{Level: k, Index: parent})
			tag = t.nodeTag(k+1, parent, node)
		}
		idx = parent
	}
	return touched, nil
}

// VerifyLeaf checks leaf i's image against the tree, walking from the leaf
// MAC up to the trusted on-chip level. It returns the off-chip nodes read
// (for timing) and an *ErrTampered if any link fails.
func (t *Tree) VerifyLeaf(i uint64, image []byte) ([]NodeID, error) {
	if i >= t.leaves {
		return nil, fmt.Errorf("tree: leaf %d out of range (%d leaves)", i, t.leaves)
	}
	if len(image) != NodeBytes {
		return nil, fmt.Errorf("tree: leaf image must be %d bytes", NodeBytes)
	}
	read := make([]NodeID, 0, len(t.levels)-1)
	tag := t.nodeTag(0, i, image)
	idx := i
	for k := 0; k < len(t.levels); k++ {
		parent := idx / Arity
		node := t.node(k, parent)
		if slot(node, idx%Arity) != tag {
			return read, &ErrTampered{Level: k, Index: idx}
		}
		if k < len(t.levels)-1 {
			read = append(read, NodeID{Level: k, Index: parent})
			tag = t.nodeTag(k+1, parent, node)
		}
		idx = parent
	}
	return read, nil
}

// UpdateLeafFast is UpdateLeaf without the touched-node report: the same
// path recompute, but allocation-free, for hot paths that do not feed the
// timing model.
func (t *Tree) UpdateLeafFast(i uint64, image []byte) error {
	if i >= t.leaves {
		return fmt.Errorf("tree: leaf %d out of range (%d leaves)", i, t.leaves)
	}
	if len(image) != NodeBytes {
		return fmt.Errorf("tree: leaf image must be %d bytes", NodeBytes)
	}
	tag := t.nodeTag(0, i, image)
	idx := i
	for k := 0; k < len(t.levels); k++ {
		parent := idx / Arity
		node := t.node(k, parent)
		setSlot(node, idx%Arity, tag)
		if k < len(t.levels)-1 {
			tag = t.nodeTag(k+1, parent, node)
		}
		idx = parent
	}
	return nil
}

// UpdateLeaves installs new images for a batch of leaves in one pass,
// recomputing each shared interior node once instead of once per leaf: all
// leaf tags are set into their parents first, then each level's dirty node
// set — deduplicated, so siblings merge — is rehashed exactly once. For N
// leaves under a common subtree this costs O(N + levels) MACs instead of
// the O(N * levels) of per-leaf updates, which is what makes an epoch
// flush of a dirty-leaf write combiner cheap.
//
// leaves may be in any order and may contain duplicates; the slice is used
// as scratch and left with unspecified contents, so the whole batch is
// allocation-free. image must return the 64-byte image of the given leaf.
func (t *Tree) UpdateLeaves(leaves []uint64, image func(leaf uint64) []byte) error {
	switch len(leaves) {
	case 0:
		return nil
	case 1:
		return t.UpdateLeafFast(leaves[0], image(leaves[0]))
	}
	for _, i := range leaves {
		if i >= t.leaves {
			return fmt.Errorf("tree: leaf %d out of range (%d leaves)", i, t.leaves)
		}
		img := image(i)
		if len(img) != NodeBytes {
			return fmt.Errorf("tree: leaf image must be %d bytes", NodeBytes)
		}
		setSlot(t.node(0, i/Arity), i%Arity, t.nodeTag(0, i, img))
	}
	// Dirty node set at level 0. Parent indices of a sorted list stay
	// sorted under the monotone /Arity map, so one sort serves every level;
	// per-level dedup happens in place during the walk.
	dirty := leaves
	for k := range dirty {
		dirty[k] /= Arity
	}
	slices.Sort(dirty)
	dirty = slices.Compact(dirty)
	for k := 0; k+1 < len(t.levels); k++ {
		w := 0
		for _, idx := range dirty {
			tag := t.nodeTag(k+1, idx, t.node(k, idx))
			setSlot(t.node(k+1, idx/Arity), idx%Arity, tag)
			if w == 0 || dirty[w-1] != idx/Arity {
				dirty[w] = idx / Arity
				w++
			}
		}
		dirty = dirty[:w]
	}
	return nil
}

// VerifyLeafFast is VerifyLeaf without the read-node report: the same walk
// and the same *ErrTampered failures, but allocation-free, for hot paths
// that do not feed the timing model.
func (t *Tree) VerifyLeafFast(i uint64, image []byte) error {
	if i >= t.leaves {
		return fmt.Errorf("tree: leaf %d out of range (%d leaves)", i, t.leaves)
	}
	if len(image) != NodeBytes {
		return fmt.Errorf("tree: leaf image must be %d bytes", NodeBytes)
	}
	tag := t.nodeTag(0, i, image)
	idx := i
	for k := 0; k < len(t.levels); k++ {
		parent := idx / Arity
		node := t.node(k, parent)
		if slot(node, idx%Arity) != tag {
			return &ErrTampered{Level: k, Index: idx}
		}
		if k < len(t.levels)-1 {
			tag = t.nodeTag(k+1, parent, node)
		}
		idx = parent
	}
	return nil
}

// Rebuild recomputes the whole tree from a leaf-image source, used at
// initialization. leafImage must return the 64-byte image of leaf i.
func (t *Tree) Rebuild(leafImage func(i uint64) []byte) error {
	for i := uint64(0); i < t.leaves; i++ {
		img := leafImage(i)
		if len(img) != NodeBytes {
			return fmt.Errorf("tree: leaf image must be %d bytes", NodeBytes)
		}
		tag := t.nodeTag(0, i, img)
		setSlot(t.node(0, i/Arity), i%Arity, tag)
	}
	for k := 1; k < len(t.levels); k++ {
		for i := uint64(0); i < t.counts[k-1]; i++ {
			tag := t.nodeTag(k, i, t.node(k-1, i))
			setSlot(t.node(k, i/Arity), i%Arity, tag)
		}
	}
	return nil
}

// NodeID names one off-chip tree node for timing and caching purposes.
type NodeID struct {
	Level int
	Index uint64
}

// FlatIndex maps a NodeID to a dense index across all off-chip levels, so
// callers can assign each node a unique cacheable address.
func (t *Tree) FlatIndex(id NodeID) uint64 {
	var base uint64
	for k := 0; k < id.Level; k++ {
		base += t.counts[k]
	}
	return base + id.Index
}

// OffChipNodes returns the total number of off-chip nodes (the FlatIndex
// range).
func (t *Tree) OffChipNodes() uint64 {
	var total uint64
	for k := 0; k < len(t.levels)-1; k++ {
		total += t.counts[k]
	}
	return total
}

// CorruptNode flips one bit of a stored node image — the attacker's move.
// Corrupting the on-chip level is rejected: it models SRAM inside the trust
// boundary.
func (t *Tree) CorruptNode(id NodeID, bit int) error {
	if id.Level >= len(t.levels)-1 {
		return fmt.Errorf("tree: level %d is on-chip and not attackable", id.Level)
	}
	if id.Index >= t.counts[id.Level] {
		return fmt.Errorf("tree: node index %d out of range", id.Index)
	}
	if bit < 0 || bit >= NodeBytes*8 {
		return fmt.Errorf("tree: bit %d out of range", bit)
	}
	t.node(id.Level, id.Index)[bit/8] ^= 1 << uint(bit%8)
	return nil
}
