package tree

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Serialization of tree node storage, for persistent (NVMM) memories.
//
// Trust note: everything below the top level is ordinary off-chip state —
// an attacker editing it cannot forge a consistent tree without the MAC
// key. The top level, however, is the freshness root: if it is stored on
// the same untrusted medium, an attacker can roll the *entire* memory back
// to an older snapshot. Deployments must either keep the top level in
// trusted storage or check it against an externally attested digest; the
// engine layer (internal/core) surfaces exactly that hook.

// WriteTo serializes the node levels. It implements io.WriterTo.
func (t *Tree) WriteTo(w io.Writer) (int64, error) {
	var written int64
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(t.levels)))
	n, err := w.Write(hdr[:])
	written += int64(n)
	if err != nil {
		return written, fmt.Errorf("tree: %w", err)
	}
	for k, level := range t.levels {
		binary.LittleEndian.PutUint64(hdr[:], uint64(len(level)))
		n, err := w.Write(hdr[:])
		written += int64(n)
		if err != nil {
			return written, fmt.Errorf("tree: level %d: %w", k, err)
		}
		n, err = w.Write(level)
		written += int64(n)
		if err != nil {
			return written, fmt.Errorf("tree: level %d: %w", k, err)
		}
	}
	return written, nil
}

// ReadFrom restores node levels serialized by WriteTo into a tree that was
// constructed with the same geometry (key, leaf count, on-chip budget).
// It implements io.ReaderFrom.
func (t *Tree) ReadFrom(r io.Reader) (int64, error) {
	var read int64
	var hdr [8]byte
	n, err := io.ReadFull(r, hdr[:])
	read += int64(n)
	if err != nil {
		return read, fmt.Errorf("tree: %w", err)
	}
	if got := binary.LittleEndian.Uint64(hdr[:]); got != uint64(len(t.levels)) {
		return read, fmt.Errorf("tree: serialized %d levels, geometry has %d", got, len(t.levels))
	}
	for k := range t.levels {
		n, err := io.ReadFull(r, hdr[:])
		read += int64(n)
		if err != nil {
			return read, fmt.Errorf("tree: level %d: %w", k, err)
		}
		if got := binary.LittleEndian.Uint64(hdr[:]); got != uint64(len(t.levels[k])) {
			return read, fmt.Errorf("tree: level %d size %d, geometry wants %d",
				k, got, len(t.levels[k]))
		}
		n, err = io.ReadFull(r, t.levels[k])
		read += int64(n)
		if err != nil {
			return read, fmt.Errorf("tree: level %d: %w", k, err)
		}
	}
	return read, nil
}

// TopLevel returns a copy of the trusted top-level node bytes — the
// freshness root a persistent deployment must attest (e.g. by digest in
// trusted NVM).
func (t *Tree) TopLevel() []byte {
	top := t.levels[len(t.levels)-1]
	out := make([]byte, len(top))
	copy(out, top)
	return out
}
