package tree

import (
	"errors"
	"math/rand"
	"testing"

	"authmem/internal/mac"
)

func testKey(t testing.TB) *mac.Key {
	t.Helper()
	material := make([]byte, 24)
	for i := range material {
		material[i] = byte(i*13 + 1)
	}
	k, err := mac.NewKey(material)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func leafImg(i uint64) []byte {
	img := make([]byte, NodeBytes)
	rng := rand.New(rand.NewSource(int64(i) + 77))
	rng.Read(img)
	return img
}

func buildTree(t testing.TB, leaves uint64, onChip int) *Tree {
	t.Helper()
	tr, err := New(testKey(t), leaves, onChip)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Rebuild(leafImg); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	key := testKey(t)
	if _, err := New(nil, 8, 3<<10); err == nil {
		t.Fatal("nil key should fail")
	}
	if _, err := New(key, 0, 3<<10); err == nil {
		t.Fatal("zero leaves should fail")
	}
	if _, err := New(key, 8, 32); err == nil {
		t.Fatal("sub-node on-chip budget should fail")
	}
}

// TestPaperGeometry reproduces the §5.2 claim: with a 512MB protected
// region and a 3KB on-chip root, the baseline (monolithic counters, 8 per
// block) tree has 5 off-chip levels counting the counter-block read, and the
// delta-encoded tree (64 counters per block) has 4.
func TestPaperGeometry(t *testing.T) {
	key := testKey(t)
	const dataBlocks = 512 << 20 / 64 // 8M

	mono, err := New(key, dataBlocks/8, 3<<10) // 1M counter blocks
	if err != nil {
		t.Fatal(err)
	}
	if got := mono.OffChipLevels() + 1; got != 5 {
		t.Errorf("baseline off-chip read depth = %d, want 5", got)
	}

	delta, err := New(key, dataBlocks/64, 3<<10) // 128K counter blocks
	if err != nil {
		t.Fatal(err)
	}
	if got := delta.OffChipLevels() + 1; got != 4 {
		t.Errorf("delta off-chip read depth = %d, want 4", got)
	}

	// On-chip level must fit the 3KB budget.
	for _, tr := range []*Tree{mono, delta} {
		top := tr.NodesAtLevel(tr.Levels() - 1)
		if top*NodeBytes > 3<<10 {
			t.Errorf("on-chip level %d nodes = %dB > 3KB", top, top*NodeBytes)
		}
	}
}

func TestVerifyAfterRebuild(t *testing.T) {
	tr := buildTree(t, 1000, 3<<10)
	for _, i := range []uint64{0, 1, 7, 8, 63, 64, 511, 999} {
		read, err := tr.VerifyLeaf(i, leafImg(i))
		if err != nil {
			t.Fatalf("leaf %d: %v", i, err)
		}
		if len(read) != tr.OffChipLevels() {
			t.Fatalf("leaf %d: read %d nodes, want %d", i, len(read), tr.OffChipLevels())
		}
	}
}

func TestUpdateThenVerify(t *testing.T) {
	tr := buildTree(t, 500, 3<<10)
	img := make([]byte, NodeBytes)
	rand.New(rand.NewSource(5)).Read(img)
	touched, err := tr.UpdateLeaf(123, img)
	if err != nil {
		t.Fatal(err)
	}
	if len(touched) != tr.OffChipLevels() {
		t.Fatalf("touched %d nodes, want %d", len(touched), tr.OffChipLevels())
	}
	if _, err := tr.VerifyLeaf(123, img); err != nil {
		t.Fatalf("updated leaf fails: %v", err)
	}
	// The old image must no longer verify (freshness).
	if _, err := tr.VerifyLeaf(123, leafImg(123)); err == nil {
		t.Fatal("stale leaf image verified: replay possible")
	}
	// Sibling leaves are unaffected.
	if _, err := tr.VerifyLeaf(124, leafImg(124)); err != nil {
		t.Fatalf("sibling broken by update: %v", err)
	}
}

func TestTamperedLeafDetected(t *testing.T) {
	tr := buildTree(t, 100, 3<<10)
	img := leafImg(42)
	img[13] ^= 0x01
	_, err := tr.VerifyLeaf(42, img)
	var tampered *ErrTampered
	if !errors.As(err, &tampered) {
		t.Fatalf("want ErrTampered, got %v", err)
	}
	if tampered.Level != 0 {
		t.Fatalf("detected at level %d, want 0", tampered.Level)
	}
}

func TestTamperedNodeDetectedAtEveryLevel(t *testing.T) {
	tr := buildTree(t, 5000, 3<<10)
	leaf := uint64(4000)
	for lvl := 0; lvl < tr.OffChipLevels(); lvl++ {
		tr2 := buildTree(t, 5000, 3<<10)
		// Corrupt the node on leaf 4000's path at this level.
		idx := leaf
		for k := 0; k <= lvl; k++ {
			idx /= Arity
		}
		if err := tr2.CorruptNode(NodeID{Level: lvl, Index: idx}, 17); err != nil {
			t.Fatal(err)
		}
		if _, err := tr2.VerifyLeaf(leaf, leafImg(leaf)); err == nil {
			t.Fatalf("corruption at level %d undetected", lvl)
		}
	}
}

func TestNodeSwapDetected(t *testing.T) {
	// Swapping two valid leaf images must fail verification because node
	// MACs bind position.
	tr := buildTree(t, 64, 3<<10)
	if _, err := tr.VerifyLeaf(3, leafImg(5)); err == nil {
		t.Fatal("leaf 5's image verified as leaf 3")
	}
}

func TestOnChipNotAttackable(t *testing.T) {
	tr := buildTree(t, 5000, 3<<10)
	top := tr.Levels() - 1
	if err := tr.CorruptNode(NodeID{Level: top, Index: 0}, 0); err == nil {
		t.Fatal("on-chip corruption should be rejected")
	}
}

func TestCorruptNodeValidation(t *testing.T) {
	tr := buildTree(t, 5000, 3<<10)
	if err := tr.CorruptNode(NodeID{Level: 0, Index: 1 << 40}, 0); err == nil {
		t.Fatal("out-of-range index should fail")
	}
	if err := tr.CorruptNode(NodeID{Level: 0, Index: 0}, 512); err == nil {
		t.Fatal("out-of-range bit should fail")
	}
}

func TestLeafBounds(t *testing.T) {
	tr := buildTree(t, 10, 3<<10)
	img := make([]byte, NodeBytes)
	if _, err := tr.VerifyLeaf(10, img); err == nil {
		t.Fatal("out-of-range leaf should fail")
	}
	if _, err := tr.UpdateLeaf(10, img); err == nil {
		t.Fatal("out-of-range leaf should fail")
	}
	if _, err := tr.VerifyLeaf(0, img[:32]); err == nil {
		t.Fatal("short image should fail")
	}
	if _, err := tr.UpdateLeaf(0, img[:32]); err == nil {
		t.Fatal("short image should fail")
	}
}

func TestFlatIndexDense(t *testing.T) {
	tr := buildTree(t, 5000, 3<<10)
	seen := make(map[uint64]bool)
	for lvl := 0; lvl < tr.OffChipLevels(); lvl++ {
		for i := uint64(0); i < tr.NodesAtLevel(lvl); i++ {
			f := tr.FlatIndex(NodeID{Level: lvl, Index: i})
			if seen[f] {
				t.Fatalf("flat index %d duplicated", f)
			}
			if f >= tr.OffChipNodes() {
				t.Fatalf("flat index %d out of range %d", f, tr.OffChipNodes())
			}
			seen[f] = true
		}
	}
	if uint64(len(seen)) != tr.OffChipNodes() {
		t.Fatalf("flat index coverage %d of %d", len(seen), tr.OffChipNodes())
	}
}

func TestIncrementalMatchesRebuild(t *testing.T) {
	// Applying updates one leaf at a time must land in the same state as a
	// full rebuild over the final images.
	key := testKey(t)
	const leaves = 300
	images := make(map[uint64][]byte)
	final := func(i uint64) []byte {
		if img, ok := images[i]; ok {
			return img
		}
		return make([]byte, NodeBytes)
	}

	incr, err := New(key, leaves, 3<<10)
	if err != nil {
		t.Fatal(err)
	}
	zero := make([]byte, NodeBytes)
	if err := incr.Rebuild(func(uint64) []byte { return zero }); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for n := 0; n < 200; n++ {
		i := uint64(rng.Intn(leaves))
		img := make([]byte, NodeBytes)
		rng.Read(img)
		images[i] = img
		if _, err := incr.UpdateLeaf(i, img); err != nil {
			t.Fatal(err)
		}
	}

	for i := uint64(0); i < leaves; i++ {
		if _, err := incr.VerifyLeaf(i, final(i)); err != nil {
			t.Fatalf("leaf %d: %v", i, err)
		}
	}

	full, err := New(key, leaves, 3<<10)
	if err != nil {
		t.Fatal(err)
	}
	if err := full.Rebuild(final); err != nil {
		t.Fatal(err)
	}
	for lvl := range incr.levels {
		for b := range incr.levels[lvl] {
			if incr.levels[lvl][b] != full.levels[lvl][b] {
				t.Fatalf("level %d byte %d differs from rebuild", lvl, b)
			}
		}
	}
}

func TestErrTamperedMessage(t *testing.T) {
	e := &ErrTampered{Level: 2, Index: 17}
	if e.Error() != "tree: integrity violation at level 2 node 17" {
		t.Fatalf("message %q", e.Error())
	}
}

func TestTotalOffChipBytes(t *testing.T) {
	tr := buildTree(t, 4096, 3<<10)
	// 4096 leaves -> levels of 512, 64, 8 (on-chip at 8 <= 48).
	want := uint64(512+64) * NodeBytes
	if got := tr.TotalOffChipBytes(); got != want {
		t.Fatalf("TotalOffChipBytes = %d, want %d", got, want)
	}
	if tr.OffChipLevels() != 2 {
		t.Fatalf("OffChipLevels = %d, want 2", tr.OffChipLevels())
	}
}

func BenchmarkVerifyLeaf(b *testing.B) {
	tr := buildTree(b, 128<<10, 3<<10) // the paper's delta-tree scale
	img := leafImg(12345)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.VerifyLeaf(12345, img); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUpdateLeaf(b *testing.B) {
	tr := buildTree(b, 128<<10, 3<<10)
	img := leafImg(777)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.UpdateLeaf(777, img); err != nil {
			b.Fatal(err)
		}
	}
}
