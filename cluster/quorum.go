package cluster

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"

	"authmem"
	"authmem/client"
	"authmem/internal/tree"
	"authmem/internal/wire"
)

// Info reports how the cluster served a call. For spanning calls it is the
// worst stripe's outcome.
type Info struct {
	// Verdict says whether every replica agreed, and if not, what
	// evidence decided the disagreement.
	Verdict Verdict
	// Degraded is set when fewer than the full replica set participated.
	Degraded bool
	// Repaired is set when a losing replica was re-written from the
	// quorum winner during this call.
	Repaired bool
}

func (i *Info) merge(o Info) {
	if o.Verdict > i.Verdict {
		i.Verdict = o.Verdict
	}
	i.Degraded = i.Degraded || o.Degraded
	i.Repaired = i.Repaired || o.Repaired
}

// Read quorum-reads len(dst) bytes at the block-aligned addr: every stripe
// touched is fetched from all of its live replicas, compared, and resolved.
// A replica caught diverging is outvoted (see Verdict), repaired, and the
// call still succeeds; an unresolvable divergence fails with *QuorumError.
func (c *Cluster) Read(addr uint64, dst []byte) (Info, error) {
	if err := c.validSpan(addr, len(dst)); err != nil {
		return Info{}, err
	}
	c.gate.RLock()
	defer c.gate.RUnlock()
	var agg Info
	err := c.forEachStripe(addr, len(dst), func(s, lo uint64, off, n int) error {
		lk := c.lockFor(s)
		lk.RLock()
		info, err := c.readQuorum(s, lo, dst[off:off+n])
		repair := err == nil && c.wantRepair(s)
		lk.RUnlock()
		if err != nil {
			return err
		}
		if repair && c.repairStripe(s) {
			info.Repaired = true
		}
		agg.merge(info)
		return nil
	})
	return agg, err
}

// Write quorum-writes len(src) bytes at the block-aligned addr to every
// replica of every stripe touched. Replicas that miss the write (dead,
// faulted) are marked stale and repaired — immediately if reachable,
// otherwise when they return.
func (c *Cluster) Write(addr uint64, src []byte) (Info, error) {
	if err := c.validSpan(addr, len(src)); err != nil {
		return Info{}, err
	}
	c.gate.RLock()
	defer c.gate.RUnlock()
	var agg Info
	err := c.forEachStripe(addr, len(src), func(s, lo uint64, off, n int) error {
		lk := c.lockFor(s)
		lk.Lock()
		info, err := c.writeQuorum(s, lo, src[off:off+n])
		repair := err == nil && c.wantRepair(s)
		lk.Unlock()
		if err != nil {
			return err
		}
		if repair && c.repairStripe(s) {
			info.Repaired = true
		}
		agg.merge(info)
		return nil
	})
	return agg, err
}

// Flush brings every reachable node to a quiescent point and refreshes the
// tracked per-node roots. It fails only when no node at all could flush.
func (c *Cluster) Flush() error {
	c.gate.RLock()
	defer c.gate.RUnlock()
	ms := c.liveMembers()
	var wg sync.WaitGroup
	oks := make([]bool, len(ms))
	for i, m := range ms {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			d, err := m.cl.FlushPinned()
			if err != nil {
				c.markDead(m)
				return
			}
			m.noteRoot(d)
			oks[i] = true
		}(i, m)
	}
	wg.Wait()
	for _, ok := range oks {
		if ok {
			return nil
		}
	}
	return errors.New("cluster: flush reached no node")
}

// NodeRoot is one member's attested root.
type NodeRoot struct {
	Name  string             `json:"name"`
	Epoch uint64             `json:"epoch"`
	Root  authmem.RootDigest `json:"root"`
}

// Attestation is a cluster-wide quiescent attestation: every member's
// flushed root, and the combined digest over them in sorted-name order.
type Attestation struct {
	Combined authmem.RootDigest `json:"combined"`
	Nodes    []NodeRoot         `json:"nodes"`
}

// Attest blocks all data traffic, flushes every member, and combines the
// per-node roots (sorted by name) into one cluster root with the same
// domain-separated construction the sharded engine uses for shard subtrees
// (tree.CombineRoots). Every member must answer: an attestation that skips
// a node pins nothing.
func (c *Cluster) Attest() (Attestation, error) {
	c.gate.Lock()
	defer c.gate.Unlock()
	c.mmu.RLock()
	names := append([]string(nil), c.names...)
	c.mmu.RUnlock()

	att := Attestation{Nodes: make([]NodeRoot, 0, len(names))}
	roots := make([][sha256.Size]byte, 0, len(names))
	for _, name := range names {
		c.mmu.RLock()
		m := c.members[name]
		c.mmu.RUnlock()
		cl := m.client()
		if cl == nil {
			return Attestation{}, fmt.Errorf("cluster: attest: node %q has never been reached", name)
		}
		d, err := cl.FlushPinned()
		if err != nil {
			c.markDead(m)
			return Attestation{}, fmt.Errorf("cluster: attest: node %q: %w", name, err)
		}
		m.noteRoot(d)
		m.mu.Lock()
		epoch := m.epoch
		m.alive = true
		m.mu.Unlock()
		att.Nodes = append(att.Nodes, NodeRoot{Name: name, Epoch: epoch, Root: d})
		roots = append(roots, d)
	}
	att.Combined = tree.CombineRoots(roots)
	return att, nil
}

// validSpan rejects malformed data spans.
func (c *Cluster) validSpan(addr uint64, n int) error {
	if n == 0 || n%wire.BlockBytes != 0 {
		return fmt.Errorf("cluster: span of %d bytes is not a positive multiple of %d", n, wire.BlockBytes)
	}
	if addr%wire.BlockBytes != 0 {
		return fmt.Errorf("cluster: address %#x not %d-byte aligned", addr, wire.BlockBytes)
	}
	if addr+uint64(n) > c.geo.Size {
		return fmt.Errorf("cluster: span [%#x, %#x) beyond region of %d bytes", addr, addr+uint64(n), c.geo.Size)
	}
	return nil
}

// forEachStripe cuts [addr, addr+n) at stripe boundaries and calls f once
// per piece with the stripe index, the piece's address, and its offset and
// length in the caller's buffer. Pieces run sequentially, so a spanning
// call holds at most one stripe lock at a time.
func (c *Cluster) forEachStripe(addr uint64, n int, f func(s, lo uint64, off, n int) error) error {
	for off := 0; off < n; {
		s := c.geo.StripeOf(addr)
		_, hi := c.geo.StripeSpan(s)
		sub := int(min(uint64(n-off), hi-addr))
		if err := f(s, addr, off, sub); err != nil {
			return err
		}
		addr += uint64(sub)
		off += sub
	}
	return nil
}

// replicaRead is one replica's answer to a fanned-out pinned read.
type replicaRead struct {
	m    *member
	data []byte
	pin  authmem.RootDigest
	err  error
}

// readQuorum fans a pinned read over stripe s's replicas and resolves the
// answers into dst. Caller holds the stripe lock (shared or exclusive) and
// the gate (shared). Losing replicas are marked dirty for later repair;
// readQuorum itself never takes the exclusive lock.
func (c *Cluster) readQuorum(s, lo uint64, dst []byte) (Info, error) {
	c.ctr.quorumReads.Add(1)
	owners := c.ownersOf(s)

	var voters []*member
	excluded := VerdictClean // strongest verdict among non-voting owners
	for _, m := range owners {
		// Liveness first: a dead member may be due for a probe, and the
		// probe is what discovers an epoch change and voids its state.
		if !m.isAlive() && !c.reviveIfDue(m) {
			excluded = max(excluded, VerdictOutvotedUnreachable)
			continue
		}
		if m.isDirty(s) {
			// Known-stale (voided by a restart, a lost vote, or a
			// missed write): must not count until repaired.
			excluded = max(excluded, VerdictOutvotedStale)
			continue
		}
		voters = append(voters, m)
	}

	reads := make([]replicaRead, len(voters))
	var wg sync.WaitGroup
	for i, m := range voters {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			buf := make([]byte, len(dst))
			_, pin, err := m.cl.ReadPinned(lo, buf)
			reads[i] = replicaRead{m: m, data: buf, pin: pin, err: err}
		}(i, m)
	}
	wg.Wait()

	var oks []replicaRead
	for _, r := range reads {
		if r.err == nil {
			oks = append(oks, r)
			continue
		}
		var se *client.StatusError
		if errors.As(r.err, &se) {
			// The node itself condemned its copy: corruption caught by
			// its MAC/tree. The replica is out and needs a re-write.
			r.m.markDirty(s)
			excluded = max(excluded, VerdictOutvotedFault)
		} else {
			c.markDead(r.m)
			excluded = max(excluded, VerdictOutvotedUnreachable)
		}
	}
	if len(oks) == 0 {
		c.ctr.countVerdict(VerdictUnresolved)
		return Info{Verdict: VerdictUnresolved}, c.quorumErr("read", lo, len(dst), reads)
	}

	winner, verdict, qerr := c.resolveReads(s, lo, oks)
	if qerr != nil {
		c.ctr.countVerdict(VerdictUnresolved)
		return Info{Verdict: VerdictUnresolved}, qerr
	}
	verdict = max(verdict, excluded)
	copy(dst, winner)

	info := Info{Verdict: verdict, Degraded: len(oks) < len(owners)}
	if info.Degraded {
		c.ctr.degradedReads.Add(1)
	}
	c.ctr.countVerdict(verdict)
	return info, nil
}

// resolveReads picks the correct answer among successful replica reads.
// One group of byte-identical answers wins; every replica outside it is
// marked dirty. The evidence ladder, in order:
//
//  1. Unanimity — everyone agrees, nothing to decide.
//  2. Majority — with R >= 3, a byte-identical strict majority wins.
//  3. Epoch — a re-handshake shows a replica's node restarted since the
//     cluster pinned it: its state is void, it is outvoted.
//  4. Root pin — a replica whose pinned root deviates from the last root
//     the cluster observed from that node (while the others' match) has
//     rolled back or been tampered: outvoted.
//  5. Nothing decides — *QuorumError. Detected, reported, never guessed.
func (c *Cluster) resolveReads(s, lo uint64, oks []replicaRead) ([]byte, Verdict, error) {
	groups := map[[sha256.Size]byte][]int{}
	for i, r := range oks {
		groups[sha256.Sum256(r.data)] = append(groups[sha256.Sum256(r.data)], i)
	}
	if len(groups) == 1 {
		return oks[0].data, VerdictClean, nil
	}

	condemn := func(idxs []int) {
		for _, i := range idxs {
			oks[i].m.markDirty(s)
		}
	}
	// Majority vote.
	for h, idxs := range groups {
		if len(idxs)*2 > len(oks) {
			for oh, oidxs := range groups {
				if oh != h {
					condemn(oidxs)
				}
			}
			return oks[idxs[0]].data, VerdictOutvotedMajority, nil
		}
	}
	// Epoch evidence: drop replicas whose node restarted under us.
	var live []replicaRead
	epochFired := false
	for _, r := range oks {
		changed, err := c.refreshEpoch(r.m)
		if err != nil || changed {
			// refreshEpoch voided the member (or marked it dead); its
			// stripe set including s is already queued for repair.
			if err == nil {
				epochFired = true
			}
			r.m.markDirty(s)
			continue
		}
		live = append(live, r)
	}
	if agreed, data := unanimous(live); agreed {
		v := VerdictOutvotedEpoch
		if !epochFired {
			v = VerdictOutvotedUnreachable
		}
		return data, v, nil
	}
	// Root-pin evidence: a replica is supported when the root pinned to
	// its answer equals the last root the cluster saw this node commit.
	// Concurrent traffic can advance a node's root between pin and check,
	// so support can be ambiguous — then nothing decides and we fall
	// through. A single supported faction is decisive: the others present
	// roots the cluster never observed, i.e. rolled-back or fabricated
	// state.
	var supported, unsupported []replicaRead
	for _, r := range live {
		r.m.mu.Lock()
		match := r.m.rootKnown && r.m.lastRoot == r.pin
		r.m.mu.Unlock()
		if match {
			supported = append(supported, r)
		} else {
			unsupported = append(unsupported, r)
		}
	}
	if agreed, data := unanimous(supported); agreed && len(supported) > 0 {
		for _, r := range unsupported {
			r.m.markDirty(s)
		}
		return data, VerdictOutvotedRoot, nil
	}
	return nil, VerdictUnresolved, c.quorumErrOK("read", lo, oks)
}

// unanimous reports whether all reads carry identical bytes.
func unanimous(rs []replicaRead) (bool, []byte) {
	if len(rs) == 0 {
		return false, nil
	}
	for _, r := range rs[1:] {
		if !bytes.Equal(r.data, rs[0].data) {
			return false, nil
		}
	}
	return true, rs[0].data
}

// writeQuorum fans a pinned write over stripe s's replicas. Caller holds
// the stripe lock exclusively (writes to one stripe are serialized so every
// replica applies them in the same order) and the gate (shared). A replica
// that misses the write is marked dirty: the stripe is stale there until
// repaired.
func (c *Cluster) writeQuorum(s, lo uint64, src []byte) (Info, error) {
	c.ctr.quorumWrites.Add(1)
	owners := c.ownersOf(s)

	type wres struct {
		m   *member
		pin authmem.RootDigest
		err error
	}
	var wg sync.WaitGroup
	res := make([]wres, 0, len(owners))
	var mu sync.Mutex
	missed := VerdictClean
	for _, m := range owners {
		if !m.isAlive() && !c.reviveIfDue(m) {
			m.markDirty(s)
			missed = max(missed, VerdictOutvotedUnreachable)
			continue
		}
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			pin, err := writePinned(m, lo, src)
			mu.Lock()
			res = append(res, wres{m, pin, err})
			mu.Unlock()
		}(m)
	}
	wg.Wait()

	acks := 0
	for _, r := range res {
		switch {
		case r.err == nil:
			r.m.noteRoot(r.pin)
			acks++
			// A write also refreshes a stale replica's copy of this
			// span, but only a full-stripe repair clears dirtiness.
		default:
			r.m.markDirty(s)
			var se *client.StatusError
			if errors.As(r.err, &se) {
				missed = max(missed, VerdictOutvotedFault)
			} else {
				c.markDead(r.m)
				missed = max(missed, VerdictOutvotedUnreachable)
			}
		}
	}
	if acks == 0 {
		c.ctr.countVerdict(VerdictUnresolved)
		states := make([]ReplicaState, 0, len(res))
		for _, r := range res {
			states = append(states, ReplicaState{Node: r.m.name, Err: r.err})
		}
		return Info{Verdict: VerdictUnresolved}, &QuorumError{Op: "write", Addr: lo, Len: len(src), Replicas: states}
	}
	info := Info{Verdict: missed, Degraded: acks < len(owners)}
	if info.Degraded {
		c.ctr.degradedWrites.Add(1)
	}
	c.ctr.countVerdict(missed)
	return info, nil
}

// writePinned writes one span to one member and returns the pinned root.
func writePinned(m *member, lo uint64, src []byte) (authmem.RootDigest, error) {
	_, pin, err := m.cl.WritePinned(lo, src)
	return pin, err
}

// wantRepair reports whether any live owner of s is marked stale. Caller
// holds the stripe lock.
func (c *Cluster) wantRepair(s uint64) bool {
	for _, m := range c.ownersOf(s) {
		if m.isDirty(s) && m.isAlive() {
			return true
		}
	}
	return false
}

// repairStripe re-creates stripe s on every stale-but-reachable replica
// from the quorum of clean ones: quorum-read the full stripe, re-write it
// onto each stale replica, read it back, and only then mark the replica
// clean. Holds the stripe lock exclusively. Returns whether at least one
// replica was repaired; failures leave the replica dirty for a later
// attempt.
func (c *Cluster) repairStripe(s uint64) bool {
	lk := c.lockFor(s)
	lk.Lock()
	defer lk.Unlock()
	return c.repairStripeLocked(s)
}

func (c *Cluster) repairStripeLocked(s uint64) bool {
	lo, hi := c.geo.StripeSpan(s)
	buf := make([]byte, hi-lo)
	if _, err := c.readQuorum(s, lo, buf); err != nil {
		return false // no trustworthy source right now
	}
	repaired := false
	for _, m := range c.ownersOf(s) {
		if !m.isDirty(s) || !m.isAlive() {
			continue
		}
		if c.copyVerified(m, lo, buf) {
			m.clearDirty(s)
			c.ctr.repairs.Add(1)
			c.ctr.repairedBytes.Add(uint64(len(buf)))
			repaired = true
		}
	}
	return repaired
}

// copyVerified writes data to m at lo and proves the copy landed by
// reading it back through m's own authentication path and comparing.
func (c *Cluster) copyVerified(m *member, lo uint64, data []byte) bool {
	cl := m.client()
	if cl == nil {
		return false
	}
	_, pin, err := cl.WritePinned(lo, data)
	if err != nil {
		if !isStatusErr(err) {
			c.markDead(m)
		}
		return false
	}
	m.noteRoot(pin)
	back := make([]byte, len(data))
	if _, _, err := cl.ReadPinned(lo, back); err != nil || !bytes.Equal(back, data) {
		if err != nil && !isStatusErr(err) {
			c.markDead(m)
		}
		return false
	}
	return true
}

func isStatusErr(err error) bool {
	var se *client.StatusError
	return errors.As(err, &se)
}

// quorumErr builds the all-replicas-failed error.
func (c *Cluster) quorumErr(op string, addr uint64, n int, reads []replicaRead) error {
	states := make([]ReplicaState, 0, len(reads))
	for _, r := range reads {
		st := ReplicaState{Node: r.m.name, Err: r.err, Root: r.pin}
		if r.err == nil {
			st.PayloadSHA = sha256.Sum256(r.data)
		}
		r.m.mu.Lock()
		st.Epoch = r.m.epoch
		r.m.mu.Unlock()
		states = append(states, st)
	}
	return &QuorumError{Op: op, Addr: addr, Len: n, Replicas: states}
}

// quorumErrOK builds the unresolved-divergence error from successful but
// conflicting reads.
func (c *Cluster) quorumErrOK(op string, addr uint64, oks []replicaRead) error {
	return c.quorumErr(op, addr, len(oks[0].data), oks)
}
