package cluster_test

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"authmem"
	"authmem/client"
	"authmem/cluster"
	icluster "authmem/internal/cluster"
	"authmem/internal/server"
	"authmem/internal/tree"
	"authmem/internal/wire"
)

func testKey() []byte { return bytes.Repeat([]byte{0x5A}, authmem.KeySize) }

// nodeHandle is one test node with a severable, restartable transport: the
// cluster dials through it, so tests can partition, kill, and restart the
// node underneath a live Cluster.
type nodeHandle struct {
	t    testing.TB
	name string
	size uint64

	mu    sync.Mutex
	mem   *authmem.ShardedMemory
	srv   *server.Server
	down  bool
	conns []net.Conn
}

func startNode(t testing.TB, name string, size uint64, epoch uint64) *nodeHandle {
	t.Helper()
	h := &nodeHandle{t: t, name: name, size: size}
	h.boot(epoch)
	t.Cleanup(func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if h.srv != nil {
			h.srv.Close()
		}
	})
	return h
}

func (h *nodeHandle) boot(epoch uint64) {
	h.t.Helper()
	cfg := authmem.DefaultConfig(h.size)
	cfg.Key = testKey()
	mem, err := authmem.NewSharded(cfg, 2)
	if err != nil {
		h.t.Fatal(err)
	}
	srv, err := server.New(server.Config{Backend: mem, NodeID: h.name, Epoch: epoch})
	if err != nil {
		h.t.Fatal(err)
	}
	h.mu.Lock()
	h.mem, h.srv, h.down = mem, srv, false
	h.mu.Unlock()
}

func (h *nodeHandle) dial() (net.Conn, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.down {
		return nil, errors.New("node unreachable")
	}
	nc, err := h.srv.DialLoopback()
	if err == nil {
		h.conns = append(h.conns, nc)
	}
	return nc, err
}

// partition severs every live connection and refuses new dials; the node
// itself keeps running untouched.
func (h *nodeHandle) partition() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.down = true
	for _, nc := range h.conns {
		nc.Close()
	}
	h.conns = nil
}

func (h *nodeHandle) heal() {
	h.mu.Lock()
	h.down = false
	h.mu.Unlock()
}

// kill stops the node process; restart boots a fresh one (empty memory, new
// epoch) reachable at the same dial point.
func (h *nodeHandle) kill() {
	h.mu.Lock()
	srv := h.srv
	h.down = true
	h.conns = nil
	h.mu.Unlock()
	srv.Close()
}

func (h *nodeHandle) restart(epoch uint64) { h.boot(epoch) }

func (h *nodeHandle) node() cluster.Node {
	return cluster.Node{Name: h.name, Dial: h.dial}
}

const (
	tSize    = 1 << 20
	tStripeB = 16 // 1 KiB stripes -> 1024 stripes over 1 MiB
)

func startCluster(t testing.TB, names ...string) (map[string]*nodeHandle, *cluster.Cluster) {
	t.Helper()
	handles := map[string]*nodeHandle{}
	var nodes []cluster.Node
	for i, n := range names {
		h := startNode(t, n, tSize, uint64(i+1))
		handles[n] = h
		nodes = append(nodes, h.node())
	}
	c, err := cluster.New(cluster.Options{
		Nodes:         nodes,
		Size:          tSize,
		StripeBlocks:  tStripeB,
		ProbeInterval: 20 * time.Millisecond,
		Client:        client.Options{MaxRetries: 2, RetryBackoff: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return handles, c
}

// stripeOwnedBy finds a stripe whose replica set contains name, returning
// its index and base address.
func stripeOwnedBy(names []string, name string, repl int) (uint64, uint64) {
	sb := uint64(tStripeB) * wire.BlockBytes
	for s := uint64(0); s < tSize/sb; s++ {
		for _, o := range icluster.Owners(s, names, repl) {
			if o == name {
				return s, s * sb
			}
		}
	}
	panic("no stripe owned by " + name)
}

func fill(b byte, n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = b ^ byte(i*7)
	}
	return p
}

func TestClusterRoundTrip(t *testing.T) {
	_, c := startCluster(t, "a", "b", "c")

	// A spanning write crossing several stripes, read back in one call
	// and in unaligned-to-stripe pieces.
	data := fill(0x21, 5*tStripeB*wire.BlockBytes/2)
	const base = 3 * tStripeB * wire.BlockBytes / 2 * 2 // stripe 1.5 alignment games, block aligned
	info, err := c.Write(base, data)
	if err != nil {
		t.Fatal(err)
	}
	if info.Verdict != cluster.VerdictClean || info.Degraded {
		t.Fatalf("write info %+v", info)
	}
	dst := make([]byte, len(data))
	info, err = c.Read(base, dst)
	if err != nil {
		t.Fatal(err)
	}
	if info.Verdict != cluster.VerdictClean || !bytes.Equal(dst, data) {
		t.Fatalf("read info %+v, equal=%v", info, bytes.Equal(dst, data))
	}
	piece := make([]byte, wire.BlockBytes)
	if _, err := c.Read(base+wire.BlockBytes, piece); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(piece, data[wire.BlockBytes:2*wire.BlockBytes]) {
		t.Fatal("sub-span read mismatch")
	}

	st := c.Stats()
	if st.QuorumReads == 0 || st.QuorumWrites == 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.DegradedReads+st.DegradedWrites+st.Repairs+st.Unresolved != 0 {
		t.Fatalf("healthy cluster reported trouble: %+v", st)
	}

	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	// Validation.
	if _, err := c.Read(1, piece); err == nil {
		t.Fatal("unaligned read accepted")
	}
	if _, err := c.Write(0, make([]byte, 13)); err == nil {
		t.Fatal("ragged span accepted")
	}
	if _, err := c.Read(tSize-wire.BlockBytes, make([]byte, 2*wire.BlockBytes)); err == nil {
		t.Fatal("out-of-region span accepted")
	}
}

func TestClusterAttest(t *testing.T) {
	_, c := startCluster(t, "a", "b", "c")
	if _, err := c.Write(0, fill(1, 4096)); err != nil {
		t.Fatal(err)
	}
	att, err := c.Attest()
	if err != nil {
		t.Fatal(err)
	}
	if len(att.Nodes) != 3 {
		t.Fatalf("attested %d nodes", len(att.Nodes))
	}
	// Node order is sorted by name, and the combined root is the same
	// domain-separated combination the sharded engine uses.
	roots := make([][sha256.Size]byte, len(att.Nodes))
	for i, nr := range att.Nodes {
		if nr.Name != []string{"a", "b", "c"}[i] {
			t.Fatalf("attest order: %v", att.Nodes)
		}
		roots[i] = nr.Root
	}
	if att.Combined != authmem.RootDigest(tree.CombineRoots(roots)) {
		t.Fatal("combined root is not CombineRoots(per-node roots)")
	}

	// A write moves at least the owners' roots, hence the combined root.
	if _, err := c.Write(8192, fill(2, 4096)); err != nil {
		t.Fatal(err)
	}
	att2, err := c.Attest()
	if err != nil {
		t.Fatal(err)
	}
	if att2.Combined == att.Combined {
		t.Fatal("combined root did not move across a write")
	}
}

// TestClusterSurvivesCorruption corrupts one replica's stored bits beyond
// ECC and checks the quorum read returns correct data, reports the typed
// verdict, and repairs the loser.
func TestClusterSurvivesCorruption(t *testing.T) {
	hs, c := startCluster(t, "a", "b", "c")
	names := []string{"a", "b", "c"}

	_, addr := stripeOwnedBy(names, "b", 2)
	data := fill(0x5C, tStripeB*wire.BlockBytes)
	if _, err := c.Write(addr, data); err != nil {
		t.Fatal(err)
	}
	for _, bit := range []int{1, 77, 300} { // beyond ECC correction
		if err := hs["b"].mem.FlipDataBit(addr, bit); err != nil {
			t.Fatal(err)
		}
	}

	dst := make([]byte, wire.BlockBytes)
	info, err := c.Read(addr, dst)
	if err != nil {
		t.Fatalf("quorum read over corrupted replica: %v", err)
	}
	if !bytes.Equal(dst, data[:wire.BlockBytes]) {
		t.Fatal("quorum read returned corrupt data")
	}
	if info.Verdict != cluster.VerdictOutvotedFault {
		t.Fatalf("verdict %v, want OUTVOTED_FAULT", info.Verdict)
	}
	if !info.Repaired {
		t.Fatal("corrupted replica was not repaired")
	}
	st := c.Stats()
	if st.OutvotedFault == 0 || st.Repairs == 0 {
		t.Fatalf("stats %+v", st)
	}

	// After repair the replica answers correctly again: the next read is
	// clean, and the repaired node's own copy verifies end to end.
	if info, err = c.Read(addr, dst); err != nil || info.Verdict != cluster.VerdictClean {
		t.Fatalf("post-repair read: info=%+v err=%v", info, err)
	}
	direct, err := client.New(client.Options{Dial: hs["b"].dial})
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	back := make([]byte, len(data))
	if _, err := direct.Read(addr, back); err != nil || !bytes.Equal(back, data) {
		t.Fatalf("repaired replica direct read: err=%v equal=%v", err, bytes.Equal(back, data))
	}
}

// TestClusterSurvivesKillAndRestart kills a node mid-life, checks degraded
// service continues, restarts the node empty with a new epoch, and checks
// the epoch evidence voids it and repair resurrects its stripes.
func TestClusterSurvivesKillAndRestart(t *testing.T) {
	hs, c := startCluster(t, "a", "b", "c")
	names := []string{"a", "b", "c"}

	_, addr := stripeOwnedBy(names, "c", 2)
	data := fill(0x7E, tStripeB*wire.BlockBytes)
	if _, err := c.Write(addr, data); err != nil {
		t.Fatal(err)
	}

	hs["c"].kill()

	dst := make([]byte, len(data))
	info, err := c.Read(addr, dst)
	if err != nil {
		t.Fatalf("read with node down: %v", err)
	}
	if !bytes.Equal(dst, data) {
		t.Fatal("degraded read returned wrong data")
	}
	if info.Verdict != cluster.VerdictOutvotedUnreachable || !info.Degraded {
		t.Fatalf("degraded read info %+v", info)
	}
	// Writes during the outage must be tracked as missed on the dead node.
	data2 := fill(0x11, tStripeB*wire.BlockBytes)
	winfo, err := c.Write(addr, data2)
	if err != nil {
		t.Fatalf("write with node down: %v", err)
	}
	if !winfo.Degraded {
		t.Fatalf("write info %+v", winfo)
	}

	// Restart: same name and dial point, empty memory, new epoch.
	hs["c"].restart(99)
	time.Sleep(30 * time.Millisecond) // let the probe interval lapse

	info, err = c.Read(addr, dst)
	if err != nil {
		t.Fatalf("read after restart: %v", err)
	}
	if !bytes.Equal(dst, data2) {
		t.Fatal("read after restart returned wrong data")
	}
	if info.Verdict == cluster.VerdictClean {
		t.Fatalf("restarted empty node served a clean quorum: %+v", info)
	}
	st := c.Stats()
	if st.EpochResets == 0 || st.Revivals == 0 {
		t.Fatalf("restart left no epoch evidence: %+v", st)
	}
	// The restarted node is repaired on demand; once repaired, reads are
	// clean again.
	deadline := time.Now().Add(2 * time.Second)
	for {
		info, err = c.Read(addr, dst)
		if err == nil && info.Verdict == cluster.VerdictClean {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stripe never converged: info=%+v err=%v", info, err)
		}
	}
	if !bytes.Equal(dst, data2) {
		t.Fatal("converged read returned wrong data")
	}
}

// TestClusterPartitionHeal partitions a node (process alive, transport
// dead), writes through the outage, heals, and checks the same-epoch
// revival repairs exactly the missed writes.
func TestClusterPartitionHeal(t *testing.T) {
	hs, c := startCluster(t, "a", "b")

	data := fill(0x44, 4*tStripeB*wire.BlockBytes)
	if _, err := c.Write(0, data); err != nil {
		t.Fatal(err)
	}

	hs["b"].partition()
	data2 := fill(0x55, 4*tStripeB*wire.BlockBytes)
	winfo, err := c.Write(0, data2)
	if err != nil {
		t.Fatalf("write during partition: %v", err)
	}
	if !winfo.Degraded {
		t.Fatalf("partitioned write info %+v", winfo)
	}

	hs["b"].heal()
	time.Sleep(30 * time.Millisecond)

	dst := make([]byte, len(data2))
	info, err := c.Read(0, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, data2) {
		t.Fatal("post-heal read returned stale data")
	}
	// The healed node rejoined with the same epoch: no epoch reset, just
	// stale-stripe repair.
	st := c.Stats()
	if st.EpochResets != 0 {
		t.Fatalf("same-epoch heal counted an epoch reset: %+v", st)
	}
	if st.Repairs == 0 && info.Verdict == cluster.VerdictClean {
		t.Fatalf("missed writes were never repaired: %+v", st)
	}
	// Convergence: repeated reads go clean.
	deadline := time.Now().Add(2 * time.Second)
	for {
		info, err = c.Read(0, dst)
		if err == nil && info.Verdict == cluster.VerdictClean {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("partition never converged: info=%+v err=%v", info, err)
		}
	}
}

// TestClusterRootEvidence writes to one replica behind the cluster's back
// (modelling rolled-back or tampered-but-MAC-valid state) and checks the
// root-pin deviation outvotes it; when both replicas deviate, the read
// fails with a typed QuorumError instead of guessing.
// TestClusterAllowDead rebuilds a cluster client over a membership that is
// currently missing a node: without AllowDead New fails, with it the
// survivors serve verified (degraded) reads, and the returned node is
// treated as unvalidated and repaired.
func TestClusterAllowDead(t *testing.T) {
	hs, c := startCluster(t, "a", "b", "c")
	data := fill(0x2F, tSize/8)
	if _, err := c.Write(0, data); err != nil {
		t.Fatal(err)
	}
	c.Close()
	hs["c"].kill()

	nodes := []cluster.Node{hs["a"].node(), hs["b"].node(), hs["c"].node()}
	if _, err := cluster.New(cluster.Options{Nodes: nodes, Size: tSize, StripeBlocks: tStripeB}); err == nil {
		t.Fatal("New without AllowDead accepted a dead member")
	}

	c2, err := cluster.New(cluster.Options{
		Nodes:         nodes,
		Size:          tSize,
		StripeBlocks:  tStripeB,
		ProbeInterval: 20 * time.Millisecond,
		Client:        client.Options{MaxRetries: 2, RetryBackoff: time.Millisecond},
		AllowDead:     true,
	})
	if err != nil {
		t.Fatalf("New with AllowDead: %v", err)
	}
	defer c2.Close()

	dst := make([]byte, len(data))
	info, err := c2.Read(0, dst)
	if err != nil {
		t.Fatalf("read over missing member: %v", err)
	}
	if !bytes.Equal(dst, data) {
		t.Fatal("read over missing member returned wrong data")
	}
	_ = info // degraded only on stripes the dead node owns

	// The node comes back (fresh state, new epoch): first contact voids
	// it and the quorum repairs it back to correctness.
	hs["c"].restart(4242)
	time.Sleep(30 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for {
		info, err = c2.Read(0, dst)
		if err == nil && info.Verdict == cluster.VerdictClean {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("returned member never converged: info=%+v err=%v", info, err)
		}
	}
	if !bytes.Equal(dst, data) {
		t.Fatal("converged read returned wrong data")
	}
	if st := c2.Stats(); st.EpochResets == 0 {
		t.Fatalf("first contact did not void the unvalidated member: %+v", st)
	}
}

func TestClusterRootEvidence(t *testing.T) {
	hs, c := startCluster(t, "a", "b")

	data := fill(0x66, tStripeB*wire.BlockBytes)
	if _, err := c.Write(0, data); err != nil {
		t.Fatal(err)
	}

	rogue, err := client.New(client.Options{Dial: hs["b"].dial})
	if err != nil {
		t.Fatal(err)
	}
	defer rogue.Close()
	if _, err := rogue.Write(0, fill(0x99, wire.BlockBytes)); err != nil {
		t.Fatal(err)
	}

	dst := make([]byte, wire.BlockBytes)
	info, err := c.Read(0, dst)
	if err != nil {
		t.Fatalf("read over deviant replica: %v", err)
	}
	if info.Verdict != cluster.VerdictOutvotedRoot {
		t.Fatalf("verdict %v, want OUTVOTED_ROOT", info.Verdict)
	}
	if !bytes.Equal(dst, data[:wire.BlockBytes]) {
		t.Fatal("deviant replica's data won the quorum")
	}

	// Both replicas deviate: nothing decides, typed error, no guessing.
	rogueA, err := client.New(client.Options{Dial: hs["a"].dial})
	if err != nil {
		t.Fatal(err)
	}
	defer rogueA.Close()
	const addr2 = 8 * tStripeB * wire.BlockBytes
	if _, err := c.Write(addr2, fill(0x10, wire.BlockBytes)); err != nil {
		t.Fatal(err)
	}
	if _, err := rogueA.Write(addr2, fill(0x20, wire.BlockBytes)); err != nil {
		t.Fatal(err)
	}
	if _, err := rogue.Write(addr2, fill(0x30, wire.BlockBytes)); err != nil {
		t.Fatal(err)
	}
	_, err = c.Read(addr2, dst)
	var qe *cluster.QuorumError
	if !errors.As(err, &qe) {
		t.Fatalf("double deviation: err=%v, want *QuorumError", err)
	}
	if len(qe.Replicas) != 2 || qe.Op != "read" {
		t.Fatalf("quorum error evidence: %+v", qe)
	}
	if c.Stats().Unresolved == 0 {
		t.Fatal("unresolved divergence not counted")
	}
}

// TestClusterRebalance joins and retires members under live traffic and
// checks verified transfers move exactly the stripes the placement moves.
func TestClusterRebalance(t *testing.T) {
	hs, c := startCluster(t, "a", "b")
	_ = hs

	data := fill(0x3A, tSize/4)
	if _, err := c.Write(0, data); err != nil {
		t.Fatal(err)
	}

	// Live traffic during the join.
	stop := make(chan struct{})
	trafficErr := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, wire.BlockBytes)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			addr := uint64(i%64) * tStripeB * wire.BlockBytes
			if addr >= tSize/4 {
				addr = 0
			}
			if _, err := c.Read(addr, buf); err != nil {
				select {
				case trafficErr <- fmt.Errorf("read at %#x: %w", addr, err):
				default:
				}
				return
			}
		}
	}()

	hC := startNode(t, "c", tSize, 7)
	if err := c.AddNode(hC.node()); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-trafficErr:
		t.Fatalf("traffic failed during rebalance: %v", err)
	default:
	}

	members := c.Members()
	if len(members) != 3 || members[2] != "c" {
		t.Fatalf("members after join: %v", members)
	}
	st := c.Stats()
	if st.RebalancedStripes == 0 || st.TransferredBytes == 0 {
		t.Fatalf("join moved nothing: %+v", st)
	}
	// Joining one of three nodes should move roughly 2/3 * 1/3 of stripe
	// replicas; certainly not all of them.
	stripes := uint64(tSize / (tStripeB * wire.BlockBytes))
	if st.RebalancedStripes >= stripes {
		t.Fatalf("join moved %d of %d stripes; rendezvous should move ~1/3", st.RebalancedStripes, stripes)
	}

	// Data intact, including on stripes now owned by the newcomer.
	dst := make([]byte, len(data))
	if info, err := c.Read(0, dst); err != nil || info.Verdict != cluster.VerdictClean {
		t.Fatalf("post-join read: info=%+v err=%v", info, err)
	}
	if !bytes.Equal(dst, data) {
		t.Fatal("post-join read mismatch")
	}

	// Retire a founding member; its stripes must re-replicate first.
	if err := c.RemoveNode("b"); err != nil {
		t.Fatal(err)
	}
	if got := c.Members(); len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("members after retire: %v", got)
	}
	if info, err := c.Read(0, dst); err != nil || info.Verdict != cluster.VerdictClean {
		t.Fatalf("post-retire read: info=%+v err=%v", info, err)
	}
	if !bytes.Equal(dst, data) {
		t.Fatal("post-retire read mismatch")
	}

	// Every stripe is again held by both survivors at full replication.
	att, err := c.Attest()
	if err != nil {
		t.Fatal(err)
	}
	if len(att.Nodes) != 2 {
		t.Fatalf("attested %d nodes after retire", len(att.Nodes))
	}
}
