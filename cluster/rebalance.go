package cluster

import (
	"fmt"
	"sort"

	icluster "authmem/internal/cluster"
)

// AddNode joins a new member and rebalances: every stripe the rendezvous
// placement assigns to the newcomer is transferred as a verified copy —
// quorum-read from its current replicas, written to the new node, read
// back through the new node's own authentication path and compared —
// before ownership flips. Transfers run stripe-by-stripe under that
// stripe's exclusive lock, so traffic to all other stripes continues
// throughout.
func (c *Cluster) AddNode(n Node) error {
	c.rebalMu.Lock()
	defer c.rebalMu.Unlock()

	c.mmu.RLock()
	_, dup := c.members[n.Name]
	newNames := append(append([]string(nil), c.names...), n.Name)
	c.mmu.RUnlock()
	if dup {
		return fmt.Errorf("cluster: node %q already a member", n.Name)
	}
	sort.Strings(newNames)

	m, err := c.connect(n, c.copts)
	if err != nil {
		return err
	}
	// Visible in the member map (so placements can resolve it) but not in
	// the name list: stripes flip to the newcomer one verified transfer
	// at a time, and Attest keeps covering exactly the old membership
	// until the join completes.
	c.mmu.Lock()
	c.members[n.Name] = m
	c.mmu.Unlock()

	if err := c.rebalance(newNames); err != nil {
		// Partial joins leave a consistent cluster: every stripe is
		// owned by replicas that hold verified copies. Drop the
		// newcomer from stripes it already won, then unwind.
		c.evict(m)
		c.mmu.Lock()
		delete(c.members, n.Name)
		c.mmu.Unlock()
		m.cl.Close()
		return err
	}
	c.mmu.Lock()
	c.names = newNames
	c.mmu.Unlock()
	return nil
}

// RemoveNode retires a member: every stripe that loses a replica with it
// first gets a fresh replica transferred (verified) onto the node the
// placement promotes, then ownership flips and the member is dropped. The
// node being removed may already be dead — transfers source from the
// surviving replicas.
func (c *Cluster) RemoveNode(name string) error {
	c.rebalMu.Lock()
	defer c.rebalMu.Unlock()

	c.mmu.RLock()
	m, ok := c.members[name]
	var newNames []string
	for _, n := range c.names {
		if n != name {
			newNames = append(newNames, n)
		}
	}
	c.mmu.RUnlock()
	if !ok {
		return fmt.Errorf("cluster: node %q is not a member", name)
	}
	if len(newNames) == 0 {
		return fmt.Errorf("cluster: cannot remove %q, it is the last member", name)
	}

	if err := c.rebalance(newNames); err != nil {
		return err
	}
	c.mmu.Lock()
	c.names = newNames
	delete(c.members, name)
	c.mmu.Unlock()
	if cl := m.client(); cl != nil {
		cl.Close()
	}
	return nil
}

// rebalance drives every stripe from its current replica set to the one
// rendezvous hashing derives from names: replicas joining a stripe receive
// a verified copy before the stripe's ownership entry is swapped. The
// rendezvous property keeps the work minimal — only stripes whose replica
// set actually changes are touched.
func (c *Cluster) rebalance(names []string) error {
	r := min(c.repl, len(names))
	for s := uint64(0); s < c.geo.Stripes(); s++ {
		target := icluster.Owners(s, names, r)

		c.gate.RLock()
		lk := c.lockFor(s)
		lk.Lock()
		cur := c.ownersOf(s)
		if sameMembers(cur, target) {
			lk.Unlock()
			c.gate.RUnlock()
			continue
		}
		var ferr error
		for _, name := range target {
			if hasMember(cur, name) {
				continue
			}
			c.mmu.RLock()
			dst := c.members[name]
			c.mmu.RUnlock()
			if dst == nil {
				ferr = fmt.Errorf("cluster: placement names unknown node %q", name)
				break
			}
			if err := c.transferStripeLocked(s, dst); err != nil {
				ferr = fmt.Errorf("cluster: stripe %d -> %q: %w", s, name, err)
				break
			}
		}
		if ferr == nil {
			c.mmu.Lock()
			c.owners[s] = c.resolve(target)
			c.mmu.Unlock()
		}
		lk.Unlock()
		c.gate.RUnlock()
		if ferr != nil {
			return ferr
		}
	}
	return nil
}

// transferStripeLocked copies stripe s onto dst as a verified checkpoint:
// the content is established by a quorum read over the current replicas,
// written to dst, and read back through dst's authentication path. Caller
// holds the stripe lock exclusively.
func (c *Cluster) transferStripeLocked(s uint64, dst *member) error {
	lo, hi := c.geo.StripeSpan(s)
	buf := make([]byte, hi-lo)
	if _, err := c.readQuorum(s, lo, buf); err != nil {
		return fmt.Errorf("no trustworthy source: %w", err)
	}
	if !c.copyVerified(dst, lo, buf) {
		return fmt.Errorf("verified copy to %q failed", dst.name)
	}
	dst.clearDirty(s)
	c.ctr.rebalancedStripes.Add(1)
	c.ctr.transferredBytes.Add(uint64(len(buf)))
	return nil
}

// evict removes m from every stripe ownership entry it appears in,
// restoring the remaining replicas as that stripe's owner set.
func (c *Cluster) evict(m *member) {
	for s := uint64(0); s < c.geo.Stripes(); s++ {
		c.gate.RLock()
		lk := c.lockFor(s)
		lk.Lock()
		c.mmu.Lock()
		cur := c.owners[s]
		kept := cur[:0:0]
		for _, o := range cur {
			if o != m {
				kept = append(kept, o)
			}
		}
		c.owners[s] = kept
		c.mmu.Unlock()
		lk.Unlock()
		c.gate.RUnlock()
	}
}

func hasMember(ms []*member, name string) bool {
	for _, m := range ms {
		if m.name == name {
			return true
		}
	}
	return false
}

// sameMembers compares a replica set against a target name set, order
// independent.
func sameMembers(ms []*member, names []string) bool {
	if len(ms) != len(names) {
		return false
	}
	for _, n := range names {
		if !hasMember(ms, n) {
			return false
		}
	}
	return true
}
