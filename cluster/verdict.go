package cluster

import (
	"crypto/sha256"
	"fmt"
	"strings"

	"authmem"
)

// Verdict classifies how a quorum operation resolved. Anything other than
// VerdictClean means at least one replica did not contribute a correct
// answer — the operation still succeeded (except VerdictUnresolved, which
// surfaces as a *QuorumError), but the caller can see exactly what kind of
// disagreement was survived.
type Verdict int

const (
	// VerdictClean: every participating replica agreed.
	VerdictClean Verdict = iota

	// VerdictOutvotedFault: a replica was discarded because its own node
	// reported an integrity failure (MAC_FAIL or QUARANTINED) — the node
	// is honest, its memory is corrupted.
	VerdictOutvotedFault

	// VerdictOutvotedUnreachable: a replica was discarded because its
	// node is dead, partitioned, or timing out.
	VerdictOutvotedUnreachable

	// VerdictOutvotedStale: a replica was excluded because the stripe is
	// known-stale on it — it missed a write during an outage or lost an
	// earlier vote — and repair has not landed yet.
	VerdictOutvotedStale

	// VerdictOutvotedEpoch: a replica answered plausibly but its node's
	// epoch changed since the cluster last validated it — the node
	// restarted, so everything it holds is void until repaired.
	VerdictOutvotedEpoch

	// VerdictOutvotedRoot: a replica answered plausibly but the root
	// digest pinned to its response deviates from the root the cluster
	// tracked for that node — rolled-back or tampered state.
	VerdictOutvotedRoot

	// VerdictOutvotedMajority: with three or more replicas, a
	// byte-identical majority outvoted the deviant minority.
	VerdictOutvotedMajority

	// VerdictUnresolved: replicas diverged and no evidence (status,
	// epoch, root, majority) decides who is lying. The operation fails
	// with a *QuorumError; the divergence is detected, never silently
	// resolved by guessing.
	VerdictUnresolved
)

var verdictNames = [...]string{
	"CLEAN", "OUTVOTED_FAULT", "OUTVOTED_UNREACHABLE", "OUTVOTED_STALE",
	"OUTVOTED_EPOCH", "OUTVOTED_ROOT", "OUTVOTED_MAJORITY", "UNRESOLVED",
}

// String implements fmt.Stringer.
func (v Verdict) String() string {
	if v < 0 || int(v) >= len(verdictNames) {
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
	return verdictNames[v]
}

// ReplicaState is one replica's contribution to a contested quorum
// operation, kept as evidence in a QuorumError.
type ReplicaState struct {
	// Node is the replica's member name.
	Node string
	// Err is how the replica failed, nil if it answered.
	Err error
	// PayloadSHA digests the replica's answer (valid when Err is nil).
	PayloadSHA [sha256.Size]byte
	// Root is the root digest the node pinned to its answer.
	Root authmem.RootDigest
	// Epoch is the node's epoch at the time of the operation.
	Epoch uint64
}

// QuorumError reports a quorum operation that could not be resolved — the
// replicas disagree and no evidence identifies the correct one — or that
// lost every replica. It is a detection, not a resolution: the caller gets
// the full per-replica evidence instead of silently trusting a guess.
type QuorumError struct {
	// Op is "read" or "write".
	Op string
	// Addr and Len frame the contested span.
	Addr uint64
	Len  int
	// Replicas is the evidence, one entry per participating replica.
	Replicas []ReplicaState
}

// Error implements error.
func (e *QuorumError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: %s of %d bytes at %#x has no quorum:", e.Op, e.Len, e.Addr)
	for _, r := range e.Replicas {
		if r.Err != nil {
			fmt.Fprintf(&b, " [%s: %v]", r.Node, r.Err)
		} else {
			fmt.Fprintf(&b, " [%s: payload %x… epoch %d]", r.Node, r.PayloadSHA[:4], r.Epoch)
		}
	}
	return b.String()
}
