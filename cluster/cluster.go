// Package cluster stripes one logical authenticated-memory region across a
// set of memserved nodes and reads it back through verifying quorums.
//
// Placement is client-side and deterministic: the region is cut into
// fixed-size stripes and every stripe is assigned to R of the N nodes by
// rendezvous hashing (internal/cluster), so any client with the member list
// derives the same map. Every node provisions the full logical address
// space and a stripe lives at identical addresses on each of its replicas,
// which keeps per-node Merkle roots meaningful and makes repair and
// rebalance plain verified copies.
//
// Reads fan out to all of a stripe's replicas and compare the answers.
// A mismatching replica is outvoted by evidence — its own node's integrity
// verdict (MAC_FAIL/QUARANTINED), unreachability, an epoch change proving a
// restart, a root-pin deviation proving rollback, or a byte-identical
// majority when R >= 3 — then repaired by re-writing the winning data.
// When no evidence decides, the operation fails with a typed *QuorumError:
// divergence is detected and reported, never silently resolved by guessing.
//
// The Cluster is a single-writer client, like the per-region memserved
// model it federates: one Cluster instance (safe for concurrent use by many
// goroutines) must be the only writer to its nodes.
package cluster

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"authmem"
	"authmem/client"
	icluster "authmem/internal/cluster"
	"authmem/internal/wire"
)

// Options configures a Cluster.
type Options struct {
	// Nodes is the initial membership. At least one node; all must be
	// reachable at New.
	Nodes []Node

	// Size is the logical region size in bytes (multiple of the 64-byte
	// block). Every node must provision at least this much.
	Size uint64

	// Replication is R, the replica count per stripe (default 2, clamped
	// to the member count). R=1 disables quorums: no corruption survives,
	// but the layout still scales capacity.
	Replication int

	// StripeBlocks is the placement granularity in blocks (default 64,
	// i.e. 4 KiB stripes; at most wire.MaxSpanBlocks).
	StripeBlocks int

	// Client is the template for each node's client.Options; Addr/Dial
	// are overridden per node.
	Client client.Options

	// ProbeInterval rate-limits liveness probes of a dead node (default
	// 1s). Shorter means faster reintegration after a partition heals.
	ProbeInterval time.Duration

	// AllowDead admits members that cannot be reached at New as dead
	// instead of failing: they are probed back to life like any other
	// dead member, and their state is voided (repaired from replicas)
	// when first contact pins their epoch. At least one member must
	// still be reachable. This is how a client rejoins a cluster that
	// is currently missing a node.
	AllowDead bool
}

// Node is one member's connection recipe.
type Node struct {
	// Name is the member's stable placement identity. It must equal the
	// node's own identity (memserved -node-id), which is verified at
	// connect time: placement and attestation are keyed by name, so a
	// name pointing at the wrong node would corrupt both.
	Name string
	// Addr is the node's TCP address, used when Dial is nil.
	Addr string
	// Dial overrides the transport, e.g. (*server.Server).DialLoopback.
	Dial func() (net.Conn, error)
}

func (o *Options) fill() error {
	if len(o.Nodes) == 0 {
		return errors.New("cluster: at least one node required")
	}
	if o.Replication <= 0 {
		o.Replication = 2
	}
	o.Replication = min(o.Replication, len(o.Nodes))
	if o.StripeBlocks <= 0 {
		o.StripeBlocks = 64
	}
	g := icluster.Geometry{Size: o.Size, StripeBlocks: o.StripeBlocks}
	if err := g.Validate(); err != nil {
		return err
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = time.Second
	}
	seen := map[string]bool{}
	for _, n := range o.Nodes {
		if n.Name == "" {
			return errors.New("cluster: every node needs a Name")
		}
		if seen[n.Name] {
			return fmt.Errorf("cluster: duplicate node name %q", n.Name)
		}
		seen[n.Name] = true
	}
	return nil
}

// member is one node's live state: its client, pinned identity, liveness,
// the latest root the cluster has observed from it, and the set of stripes
// known to be stale on it.
type member struct {
	name string
	node Node

	mu        sync.Mutex
	cl        *client.Client // nil only while dead-since-birth (AllowDead)
	alive     bool
	everSeen  bool               // completed a handshake at least once
	epoch     uint64             // pinned at connect/revival; change = restart
	lastRoot  authmem.RootDigest // latest root pinned by a write/flush
	rootKnown bool
	nextProbe time.Time
	dirty     map[uint64]struct{} // stripes that missed writes or lost a vote
}

func (m *member) markDirty(s uint64) {
	m.mu.Lock()
	m.dirty[s] = struct{}{}
	m.mu.Unlock()
}

func (m *member) isDirty(s uint64) bool {
	m.mu.Lock()
	_, d := m.dirty[s]
	m.mu.Unlock()
	return d
}

func (m *member) clearDirty(s uint64) {
	m.mu.Lock()
	delete(m.dirty, s)
	m.mu.Unlock()
}

// noteRoot records the latest root digest pinned by this node to a write or
// flush response, the reference for root-deviation evidence.
func (m *member) noteRoot(d authmem.RootDigest) {
	m.mu.Lock()
	m.lastRoot = d
	m.rootKnown = true
	m.mu.Unlock()
}

func (m *member) isAlive() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.alive
}

// Cluster is the striping, quorum-reading client over the member nodes.
type Cluster struct {
	geo   icluster.Geometry
	repl  int
	probe time.Duration
	copts client.Options // template for node clients, kept for AddNode

	// gate: data operations (reads, writes, repairs, transfers) hold it
	// shared; Attest holds it exclusively to get a cluster-wide quiescent
	// point. Always acquired before any stripe lock.
	gate sync.RWMutex

	// mmu guards membership: the name->member map and the sorted name
	// list placement is derived from.
	mmu     sync.RWMutex
	members map[string]*member
	names   []string

	// owners is the live placement: owners[s] is stripe s's replica set,
	// best-score-first. Entries are read and replaced only under the
	// stripe's lock, so rebalancing swaps ownership stripe-by-stripe
	// while traffic continues elsewhere.
	owners [][]*member

	// locks are lock-striped per-stripe RW locks: reads share, writes
	// and repairs/transfers are exclusive, which both serializes
	// conflicting writes (replicas must apply them in one order) and
	// makes the replica comparison race-free.
	locks []sync.RWMutex

	// rebalMu serializes membership changes.
	rebalMu sync.Mutex

	ctr    counters
	closed bool
}

// New connects to every node, verifies identities and geometry, computes
// the initial placement, and returns a ready Cluster.
func New(opts Options) (*Cluster, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	c := &Cluster{
		geo:     icluster.Geometry{Size: opts.Size, StripeBlocks: opts.StripeBlocks},
		repl:    opts.Replication,
		probe:   opts.ProbeInterval,
		copts:   opts.Client,
		members: make(map[string]*member, len(opts.Nodes)),
	}
	alive := 0
	for _, n := range opts.Nodes {
		m, err := c.connect(n, opts.Client)
		switch {
		case err == nil:
			alive++
		case opts.AllowDead:
			// Admitted dead: probed back like any downed member; the
			// first successful handshake voids its unknown state.
			m = &member{name: n.Name, node: n, dirty: make(map[uint64]struct{})}
		default:
			c.Close()
			return nil, err
		}
		c.members[n.Name] = m
		c.names = append(c.names, n.Name)
	}
	if alive == 0 {
		c.Close()
		return nil, errors.New("cluster: no member reachable")
	}
	sort.Strings(c.names)

	stripes := c.geo.Stripes()
	c.locks = make([]sync.RWMutex, min(stripes, 512))
	c.owners = make([][]*member, stripes)
	for s := uint64(0); s < stripes; s++ {
		c.owners[s] = c.resolve(icluster.Owners(s, c.names, c.repl))
	}
	return c, nil
}

// connect dials one node and pins its identity and epoch.
func (c *Cluster) connect(n Node, tmpl client.Options) (*member, error) {
	tmpl.Addr = n.Addr
	tmpl.Dial = n.Dial
	cl, err := client.New(tmpl)
	if err != nil {
		return nil, fmt.Errorf("cluster: node %q: %w", n.Name, err)
	}
	ni, err := cl.Hello()
	if err != nil {
		cl.Close()
		return nil, fmt.Errorf("cluster: node %q handshake: %w", n.Name, err)
	}
	if ni.NodeID != n.Name {
		cl.Close()
		return nil, fmt.Errorf("cluster: node at %q identifies as %q, configured as %q", n.Addr, ni.NodeID, n.Name)
	}
	if ni.Size < c.geo.Size || ni.BlockBytes != wire.BlockBytes {
		cl.Close()
		return nil, fmt.Errorf("cluster: node %q provisions %d bytes of %d-byte blocks; need %d bytes", n.Name, ni.Size, ni.BlockBytes, c.geo.Size)
	}
	return &member{
		name:     n.Name,
		node:     n,
		cl:       cl,
		alive:    true,
		everSeen: true,
		epoch:    ni.Epoch,
		dirty:    make(map[uint64]struct{}),
	}, nil
}

// client returns m's client; nil while the member has never been reached.
func (m *member) client() *client.Client {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cl
}

// resolve maps owner names to live member structs.
func (c *Cluster) resolve(names []string) []*member {
	ms := make([]*member, len(names))
	for i, n := range names {
		ms[i] = c.members[n]
	}
	return ms
}

// Close tears down every node client.
func (c *Cluster) Close() error {
	c.mmu.Lock()
	defer c.mmu.Unlock()
	c.closed = true
	for _, m := range c.members {
		if cl := m.client(); cl != nil {
			cl.Close()
		}
	}
	return nil
}

// Members returns the current member names, sorted. This is also the node
// order of Attest's combined root.
func (c *Cluster) Members() []string {
	c.mmu.RLock()
	defer c.mmu.RUnlock()
	return append([]string(nil), c.names...)
}

// lockFor returns stripe s's lock (lock-striped; distinct stripes may
// share, which costs concurrency, never correctness).
func (c *Cluster) lockFor(s uint64) *sync.RWMutex {
	return &c.locks[s%uint64(len(c.locks))]
}

// ownersOf copies stripe s's replica set. Caller holds the stripe lock;
// mmu additionally covers the table entry itself, which rebalancing swaps.
func (c *Cluster) ownersOf(s uint64) []*member {
	c.mmu.RLock()
	defer c.mmu.RUnlock()
	return append([]*member(nil), c.owners[s]...)
}

// liveMembers returns every member currently marked alive.
func (c *Cluster) liveMembers() []*member {
	c.mmu.RLock()
	defer c.mmu.RUnlock()
	ms := make([]*member, 0, len(c.members))
	for _, m := range c.members {
		if m.isAlive() {
			ms = append(ms, m)
		}
	}
	return ms
}

// markDead records a transport-level failure of m.
func (c *Cluster) markDead(m *member) {
	m.mu.Lock()
	if m.alive {
		m.alive = false
		m.nextProbe = time.Now().Add(c.probe)
	}
	m.mu.Unlock()
}

// reviveIfDue probes a dead node, rate-limited. A successful probe with an
// unchanged epoch reintegrates the node as-is (its dirty set already names
// every stripe that missed a write during the outage). A changed epoch —
// or a first-ever contact with a member admitted dead at New — means the
// node's state is unvalidated: everything it owns is voided for repair.
func (c *Cluster) reviveIfDue(m *member) bool {
	m.mu.Lock()
	if m.alive {
		m.mu.Unlock()
		return true
	}
	if time.Now().Before(m.nextProbe) {
		m.mu.Unlock()
		return false
	}
	m.nextProbe = time.Now().Add(c.probe)
	cl := m.cl
	m.mu.Unlock()

	if cl == nil {
		// Dead since birth (AllowDead): build the client now.
		tmpl := c.copts
		tmpl.Addr = m.node.Addr
		tmpl.Dial = m.node.Dial
		ncl, err := client.New(tmpl)
		if err != nil {
			return false
		}
		m.mu.Lock()
		if m.cl == nil {
			m.cl = ncl
		}
		cl = m.cl
		m.mu.Unlock()
		if cl != ncl {
			ncl.Close()
		}
	}

	ni, err := cl.Hello()
	if err != nil || ni.NodeID != m.name || ni.Size < c.geo.Size || ni.BlockBytes != wire.BlockBytes {
		return false
	}
	m.mu.Lock()
	restarted := !m.everSeen || ni.Epoch != m.epoch
	m.epoch = ni.Epoch
	m.alive = true
	m.everSeen = true
	m.rootKnown = m.rootKnown && !restarted
	m.mu.Unlock()
	c.ctr.revivals.Add(1)
	if restarted {
		c.ctr.epochResets.Add(1)
		c.voidMember(m)
	}
	return true
}

// voidMember marks every stripe owned by m dirty: its state is void (the
// node restarted) and each stripe must be repaired from a surviving
// replica before m's answers count again.
func (c *Cluster) voidMember(m *member) {
	c.mmu.RLock()
	defer c.mmu.RUnlock()
	for s := uint64(0); s < c.geo.Stripes(); s++ {
		for _, o := range c.owners[s] {
			if o == m {
				m.markDirty(s)
				break
			}
		}
	}
}

// refreshEpoch re-runs the handshake against a live node and reports
// whether its epoch moved since it was pinned — the restart evidence used
// to resolve divergent reads. A changed epoch voids the member.
func (c *Cluster) refreshEpoch(m *member) (changed bool, err error) {
	ni, err := m.cl.Hello()
	if err != nil {
		c.markDead(m)
		return false, err
	}
	m.mu.Lock()
	changed = ni.Epoch != m.epoch
	m.epoch = ni.Epoch
	m.rootKnown = m.rootKnown && !changed
	m.mu.Unlock()
	if changed {
		c.ctr.epochResets.Add(1)
		c.voidMember(m)
	}
	return changed, nil
}
