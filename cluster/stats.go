package cluster

import "sync/atomic"

// Stats is a point-in-time snapshot of the cluster client's counters:
// quorum traffic, degraded-mode events broken down by verdict, repairs, and
// rebalance volume. Cumulative since New.
type Stats struct {
	// QuorumReads and QuorumWrites count stripe-level quorum operations
	// (a spanning Read/Write contributes one per stripe touched).
	QuorumReads  uint64 `json:"quorum_reads"`
	QuorumWrites uint64 `json:"quorum_writes"`

	// DegradedReads/DegradedWrites count quorum operations that completed
	// without full replica participation.
	DegradedReads  uint64 `json:"degraded_reads"`
	DegradedWrites uint64 `json:"degraded_writes"`

	// Outvote verdicts, one counter per cause. See Verdict.
	OutvotedFault       uint64 `json:"outvoted_fault"`
	OutvotedUnreachable uint64 `json:"outvoted_unreachable"`
	OutvotedStale       uint64 `json:"outvoted_stale"`
	OutvotedEpoch       uint64 `json:"outvoted_epoch"`
	OutvotedRoot        uint64 `json:"outvoted_root"`
	OutvotedMajority    uint64 `json:"outvoted_majority"`

	// Unresolved counts quorum operations that failed with a
	// *QuorumError: divergence detected, no evidence to resolve it.
	Unresolved uint64 `json:"unresolved"`

	// Repairs counts stripes re-written onto a losing replica from the
	// quorum winner; RepairedBytes is their volume.
	Repairs       uint64 `json:"repairs"`
	RepairedBytes uint64 `json:"repaired_bytes"`

	// Revivals counts dead nodes brought back by a probe; EpochResets
	// counts revivals that found a new epoch (node restarted — all its
	// stripes were voided and queued for repair).
	Revivals    uint64 `json:"revivals"`
	EpochResets uint64 `json:"epoch_resets"`

	// RebalancedStripes and TransferredBytes measure verified stripe
	// transfers performed by AddNode/RemoveNode.
	RebalancedStripes uint64 `json:"rebalanced_stripes"`
	TransferredBytes  uint64 `json:"transferred_bytes"`
}

type counters struct {
	quorumReads         atomic.Uint64
	quorumWrites        atomic.Uint64
	degradedReads       atomic.Uint64
	degradedWrites      atomic.Uint64
	outvotedFault       atomic.Uint64
	outvotedUnreachable atomic.Uint64
	outvotedStale       atomic.Uint64
	outvotedEpoch       atomic.Uint64
	outvotedRoot        atomic.Uint64
	outvotedMajority    atomic.Uint64
	unresolved          atomic.Uint64
	repairs             atomic.Uint64
	repairedBytes       atomic.Uint64
	revivals            atomic.Uint64
	epochResets         atomic.Uint64
	rebalancedStripes   atomic.Uint64
	transferredBytes    atomic.Uint64
}

func (c *counters) countVerdict(v Verdict) {
	switch v {
	case VerdictOutvotedFault:
		c.outvotedFault.Add(1)
	case VerdictOutvotedUnreachable:
		c.outvotedUnreachable.Add(1)
	case VerdictOutvotedStale:
		c.outvotedStale.Add(1)
	case VerdictOutvotedEpoch:
		c.outvotedEpoch.Add(1)
	case VerdictOutvotedRoot:
		c.outvotedRoot.Add(1)
	case VerdictOutvotedMajority:
		c.outvotedMajority.Add(1)
	case VerdictUnresolved:
		c.unresolved.Add(1)
	}
}

func (c *counters) snapshot() Stats {
	return Stats{
		QuorumReads:         c.quorumReads.Load(),
		QuorumWrites:        c.quorumWrites.Load(),
		DegradedReads:       c.degradedReads.Load(),
		DegradedWrites:      c.degradedWrites.Load(),
		OutvotedFault:       c.outvotedFault.Load(),
		OutvotedUnreachable: c.outvotedUnreachable.Load(),
		OutvotedStale:       c.outvotedStale.Load(),
		OutvotedEpoch:       c.outvotedEpoch.Load(),
		OutvotedRoot:        c.outvotedRoot.Load(),
		OutvotedMajority:    c.outvotedMajority.Load(),
		Unresolved:          c.unresolved.Load(),
		Repairs:             c.repairs.Load(),
		RepairedBytes:       c.repairedBytes.Load(),
		Revivals:            c.revivals.Load(),
		EpochResets:         c.epochResets.Load(),
		RebalancedStripes:   c.rebalancedStripes.Load(),
		TransferredBytes:    c.transferredBytes.Load(),
	}
}

// Stats returns the cluster client's counters.
func (c *Cluster) Stats() Stats { return c.ctr.snapshot() }
