package authmem

import (
	"io"
	"sync"
)

// SyncMemory wraps a Memory with a single mutex so it can be shared between
// goroutines, modeling one memory controller that serializes every access.
// It provides safety with zero routing overhead; for parallel access across
// concurrent goroutines use ShardedMemory, which partitions the region into
// independently locked shards.
type SyncMemory struct {
	mu  sync.Mutex
	mem *Memory
}

// NewSync builds a thread-safe Memory.
func NewSync(cfg Config) (*SyncMemory, error) {
	mem, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &SyncMemory{mem: mem}, nil
}

// Write encrypts and stores one block. See Memory.Write.
func (s *SyncMemory) Write(addr uint64, block []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem.Write(addr, block)
}

// Read verifies and decrypts one block. See Memory.Read.
func (s *SyncMemory) Read(addr uint64, dst []byte) (ReadInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem.Read(addr, dst)
}

// ReadAt implements io.ReaderAt. See Memory.ReadAt.
func (s *SyncMemory) ReadAt(p []byte, off int64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem.ReadAt(p, off)
}

// WriteAt implements io.WriterAt. See Memory.WriteAt.
func (s *SyncMemory) WriteAt(p []byte, off int64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem.WriteAt(p, off)
}

// WriteBlocks stores a contiguous span of blocks. See Memory.WriteBlocks.
func (s *SyncMemory) WriteBlocks(addr uint64, src []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem.WriteBlocks(addr, src)
}

// ReadBlocks reads a contiguous span of blocks. See Memory.ReadBlocks.
func (s *SyncMemory) ReadBlocks(addr uint64, dst []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem.ReadBlocks(addr, dst)
}

// ReadRecover reads with the recovery ladder. See Memory.ReadRecover.
func (s *SyncMemory) ReadRecover(addr uint64, dst []byte) (RecoverInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem.ReadRecover(addr, dst)
}

// EnableWritePipeline turns on the deferred-Merkle write pipeline. See
// Memory.EnableWritePipeline.
func (s *SyncMemory) EnableWritePipeline(maxDirty int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem.EnableWritePipeline(maxDirty)
}

// Flush forces deferred Merkle maintenance to land. See Memory.Flush.
func (s *SyncMemory) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem.Flush()
}

// FlushAll is Flush under the uniform quiescent-point name shared with
// ShardedMemory. See Memory.FlushAll.
func (s *SyncMemory) FlushAll() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem.Flush()
}

// Size returns the protected region size in bytes.
func (s *SyncMemory) Size() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem.Size()
}

// RootDigest returns the trusted root digest over the current state. See
// Memory.RootDigest.
func (s *SyncMemory) RootDigest() RootDigest {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem.RootDigest()
}

// CounterStats reports counter-scheme events. See Memory.CounterStats.
func (s *SyncMemory) CounterStats() CounterStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem.CounterStats()
}

// SetRecoveryPolicy replaces the recovery policy. See Memory.SetRecoveryPolicy.
func (s *SyncMemory) SetRecoveryPolicy(p RecoveryPolicy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mem.SetRecoveryPolicy(p)
}

// RecoveryPolicy reports the policy currently in force.
func (s *SyncMemory) RecoveryPolicy() RecoveryPolicy {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem.RecoveryPolicy()
}

// Quarantined reports whether the block at addr is quarantined.
func (s *SyncMemory) Quarantined(addr uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem.Quarantined(addr)
}

// QuarantineCount returns the number of quarantined blocks without
// allocating.
func (s *SyncMemory) QuarantineCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem.QuarantineCount()
}

// QuarantineList returns the quarantined block indices in ascending order.
func (s *SyncMemory) QuarantineList() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem.QuarantineList()
}

// Scrub runs one patrol-scrub pass. See Memory.Scrub.
func (s *SyncMemory) Scrub() (ScrubReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem.Scrub()
}

// ParallelScrub runs a sharded patrol-scrub pass. The memory lock is held
// for the whole pass — the parallelism is internal to the scrubber. See
// Memory.ParallelScrub.
func (s *SyncMemory) ParallelScrub(workers int) (ScrubReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem.ParallelScrub(workers)
}

// Persist writes the NVMM image. See Memory.Persist.
func (s *SyncMemory) Persist(w io.Writer) (RootDigest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem.Persist(w)
}

// Stats returns engine statistics.
func (s *SyncMemory) Stats() EngineStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem.Stats()
}

// Locked runs fn with the memory lock held, passing the underlying Memory.
// This is the escape hatch to the full Memory surface (attack experiments,
// counter stats, tamper APIs): unlike a raw unwrap, the inner Memory is only
// ever reachable under the lock, so a concurrent reader cannot race the
// callback. fn must not retain the *Memory after returning and must not call
// back into the SyncMemory (the lock is not reentrant).
func (s *SyncMemory) Locked(fn func(m *Memory)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn(s.mem)
}
