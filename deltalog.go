package authmem

import (
	"io"

	"authmem/internal/core"
	"authmem/internal/wal"
)

// Incremental persistence: dirty-delta checkpoints and a sealed group WAL.
//
// Persist serializes the whole region even when a handful of 4KB groups
// changed. The incremental path keeps a group-granular dirty set (fed by the
// same commit points the write pipeline uses) and appends only the changed
// groups to an append-only delta log: a base image plus a log replays to the
// exact pre-crash state, paying O(dirty) per checkpoint instead of O(region).
//
// Lifecycle:
//
//	m.EnableDeltaTracking()
//	root, _ := m.Persist(baseFile)      // full base snapshot
//	dl, _ := m.NewDeltaLog(logFile)     // log seeded with the base root
//	... traffic ...
//	st, _ := m.AppendDelta(dl)          // sealed epoch: dirty groups + root
//	... crash ...
//	m, rep, err := ResumeIncremental(cfg, baseFile, logFile, &st.Root)
//
// Every record is length-prefixed, CRC-framed, and sealed with a chained
// HMAC keyed from the device secret; each epoch closes with a commit record
// carrying the root digest the rebuilt tree must hash to. Torn tails recover
// to the last committed epoch with a typed verdict; tampered or spliced logs
// are refused. Pin the newest root (or use the RecoveryReport.EpochRoots
// list against a sealed manifest, as cmd/memserved does) to also detect a
// maliciously shortened-but-valid log.

// DeltaLog is an open append-only delta log bound to the Memory that created
// it: records are sealed under a key derived from the device secret and
// chained from the base snapshot's root digest.
type DeltaLog struct {
	w *wal.Writer
}

// Records returns the number of sealed records appended so far.
func (l *DeltaLog) Records() uint64 { return l.w.Records() }

// Offset returns the log length in bytes (header included).
func (l *DeltaLog) Offset() int64 { return l.w.Offset() }

// DeltaStats reports what one AppendDelta epoch wrote: group records, log
// growth in bytes, the epoch number, and the sealed root digest — the value
// to pin in trusted storage.
type DeltaStats = core.DeltaStats

// RecoveryStatus classifies how an incremental resume ended.
type RecoveryStatus = core.RecoveryStatus

const (
	// RecoveryClean: the whole log replayed and every epoch verified.
	RecoveryClean = core.RecoveryClean
	// RecoveryTruncated: a torn or damaged tail was cut at the last
	// committed epoch — the expected outcome of a crash.
	RecoveryTruncated = core.RecoveryTruncated
	// RecoveryRollback: authenticated-state mismatch; the resume is
	// refused with a *RecoveryError.
	RecoveryRollback = core.RecoveryRollback
)

// RecoveryReport is the typed verdict of an incremental resume.
type RecoveryReport = core.RecoveryReport

// RecoveryError wraps a rollback-detected RecoveryReport; it round-trips
// through errors.As from every resume path, sharded ones included.
type RecoveryError = core.RecoveryError

// CodecMismatchError reports a persisted image whose check bytes were
// written by a different ECC codec than the resuming Config selects. It
// round-trips through errors.As from every resume path.
type CodecMismatchError = core.CodecMismatchError

// EnableDeltaTracking turns on the dirty-group set behind AppendDelta. Call
// before traffic (ResumeIncremental enables it automatically); writes landed
// while tracking is off are not observed by the next delta epoch.
func (m *Memory) EnableDeltaTracking() { m.eng.EnableDeltaTracking() }

// DeltaTrackingEnabled reports whether the dirty-group set is active.
func (m *Memory) DeltaTrackingEnabled() bool { return m.eng.DeltaTrackingEnabled() }

// DirtyGroups returns the number of groups the next AppendDelta would
// serialize.
func (m *Memory) DirtyGroups() int { return m.eng.DirtyGroups() }

// NewDeltaLog starts a fresh delta log on w, seeded with the memory's
// current root digest. Persist the base image first; the log extends exactly
// that state.
func (m *Memory) NewDeltaLog(w io.Writer) (*DeltaLog, error) {
	lw, err := m.eng.NewDeltaWriter(w)
	if err != nil {
		return nil, err
	}
	return &DeltaLog{w: lw}, nil
}

// AppendDelta seals one checkpoint epoch onto the log: every dirty group's
// records plus a commit record carrying the post-epoch root digest, clearing
// the dirty set. Cost is O(dirty groups), not O(region). An epoch with no
// dirty groups writes only its commit record.
func (m *Memory) AppendDelta(l *DeltaLog) (DeltaStats, error) {
	return m.eng.AppendDelta(l.w)
}

// ResumeIncremental rebuilds a Memory from a base image plus a delta log:
// the base resumes through the verified Resume path, then the log replays
// epoch by epoch to the newest record whose chained seal and sealed root
// verify. The report is the typed verdict — clean, truncated at the crash
// point (memory valid at the last committed epoch), or rollback-detected
// (resume refused, err is a *RecoveryError).
//
// walR may be nil to resume the base alone. If expectRoot is non-nil the
// recovered root must equal it, which also catches a shortened-but-valid log
// prefix (truncation attack).
func ResumeIncremental(cfg Config, base, walR io.Reader, expectRoot *RootDigest) (*Memory, *RecoveryReport, error) {
	icfg, err := cfg.internal()
	if err != nil {
		return nil, nil, err
	}
	eng, rep, err := core.ResumeIncremental(icfg, base, walR, expectRoot)
	if err != nil {
		return nil, rep, err
	}
	return &Memory{eng: eng}, rep, nil
}

// EnableDeltaTracking turns on the dirty-group set. See
// Memory.EnableDeltaTracking.
func (s *SyncMemory) EnableDeltaTracking() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mem.EnableDeltaTracking()
}

// DirtyGroups returns the pending dirty-group count. See Memory.DirtyGroups.
func (s *SyncMemory) DirtyGroups() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem.DirtyGroups()
}

// NewDeltaLog starts a fresh delta log. See Memory.NewDeltaLog.
func (s *SyncMemory) NewDeltaLog(w io.Writer) (*DeltaLog, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem.NewDeltaLog(w)
}

// AppendDelta seals one checkpoint epoch onto the log, holding the memory
// lock for the duration — an epoch is a consistent cut of the region. See
// Memory.AppendDelta.
func (s *SyncMemory) AppendDelta(l *DeltaLog) (DeltaStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem.AppendDelta(l)
}

// EnableDeltaTracking turns on the dirty-group set on every shard.
func (s *ShardedMemory) EnableDeltaTracking() { s.eng.EnableDeltaTracking() }

// DirtyGroups sums the dirty groups pending across all shards.
func (s *ShardedMemory) DirtyGroups() int { return s.eng.DirtyGroups() }

// NewShardDeltaLog starts shard i's delta log on w, sealed under the shard's
// derived key (records can never migrate between shards) and seeded with the
// shard's subtree root. Persist the sharded base image first, then open each
// shard's log.
func (s *ShardedMemory) NewShardDeltaLog(i int, w io.Writer) (*DeltaLog, error) {
	lw, err := s.eng.NewShardDeltaWriter(i, w)
	if err != nil {
		return nil, err
	}
	return &DeltaLog{w: lw}, nil
}

// AppendDeltaShard seals one checkpoint epoch of shard i's dirty groups onto
// its log, locking only that shard. The combined attestation for a full
// round of shard appends is RootDigest().
func (s *ShardedMemory) AppendDeltaShard(i int, l *DeltaLog) (DeltaStats, error) {
	return s.eng.AppendDeltaShard(i, l.w)
}

// BeginShardedImage writes the sharded-image container header for a
// checkpoint assembled one CheckpointShard call at a time (a 1-shard memory
// writes nothing — its single section is the image).
func (s *ShardedMemory) BeginShardedImage(w io.Writer) error { return s.eng.BeginShardedImage(w) }

// CheckpointShard persists shard i's image section to baseW and opens a
// fresh delta log for it on logW, atomically under the shard's lock — other
// shards keep serving while this shard folds. Call BeginShardedImage first,
// then CheckpointShard for every shard in order. Returns the shard root the
// new log is seeded with; pin it (cmd/memserved seals it into its manifest).
func (s *ShardedMemory) CheckpointShard(i int, baseW, logW io.Writer) (RootDigest, *DeltaLog, error) {
	root, lw, err := s.eng.CheckpointShard(i, baseW, logW)
	if err != nil {
		return RootDigest{}, nil, err
	}
	return root, &DeltaLog{w: lw}, nil
}

// ResumeShardedIncremental rebuilds a ShardedMemory from a base image plus
// one delta log per shard (wals may be nil for base-only; entries may be nil
// for shards without a log). Each shard resumes and replays independently —
// reports holds one verdict per shard — then the combined root over the
// recovered shards is checked against expectRoot when supplied. As with
// ResumeSharded, a v1 image is accepted when shards is 1.
func ResumeShardedIncremental(cfg Config, shards int, base io.Reader, wals []io.Reader, expectRoot *RootDigest) (*ShardedMemory, []*RecoveryReport, error) {
	icfg, err := cfg.internal()
	if err != nil {
		return nil, nil, err
	}
	eng, reports, err := core.ResumeShardedIncremental(icfg, shards, base, wals, expectRoot)
	if err != nil {
		return nil, reports, err
	}
	return &ShardedMemory{eng: eng}, reports, nil
}

// CombinedRecoveredRoot recomputes the combined attestation digest from the
// per-shard recovery reports of a ResumeShardedIncremental that ran without
// a pin — compare it against the trusted combined root yourself.
func CombinedRecoveredRoot(reports []*RecoveryReport) RootDigest {
	return core.CombinedRecoveredRoot(reports)
}
