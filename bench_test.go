package authmem

// This file is the benchmark harness for the paper's evaluation section:
// one benchmark per figure/table, plus ablations over the design choices
// DESIGN.md calls out. Paper-facing metrics are emitted via ReportMetric,
// so `go test -bench=.` regenerates the numbers cmd/paperbench prints.
//
// Scale note: benchmark iterations run reduced experiment sizes so the
// suite completes in minutes; cmd/paperbench runs the full-size versions.

import (
	"testing"

	"authmem/internal/core"
	"authmem/internal/cpu"
	"authmem/internal/ctr"
	"authmem/internal/dram"
	"authmem/internal/fault"
	"authmem/internal/sim"
	"authmem/internal/trace"
	"authmem/internal/workload"
)

// BenchmarkFig1StorageOverhead computes the Figure 1 storage breakdown and
// reports baseline and proposed overhead percentages.
func BenchmarkFig1StorageOverhead(b *testing.B) {
	var basePct, propPct float64
	for i := 0; i < b.N; i++ {
		base, err := core.ComputeOverhead(core.Default(ctr.Monolithic, core.MACInline))
		if err != nil {
			b.Fatal(err)
		}
		prop, err := core.ComputeOverhead(core.Default(ctr.Delta, core.MACInECC))
		if err != nil {
			b.Fatal(err)
		}
		basePct, propPct = base.EncryptionOverheadPct(), prop.EncryptionOverheadPct()
	}
	b.ReportMetric(basePct, "baseline-%")
	b.ReportMetric(propPct, "proposed-%")
	b.ReportMetric(basePct/propPct, "reduction-x")
}

// BenchmarkFig3FaultInjection runs the Figure 3 fault matrix; sub-benchmarks
// cover each fault class and report the corrected fraction per scheme.
func BenchmarkFig3FaultInjection(b *testing.B) {
	for _, class := range fault.Classes() {
		b.Run(class.String(), func(b *testing.B) {
			const trials = 200
			var sec, mec fault.Result
			for i := 0; i < b.N; i++ {
				sec = fault.InjectSECDED(class, trials, int64(i))
				var err error
				mec, err = fault.InjectMACECC(class, trials, int64(i), 2)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(sec.CorrectedPct(), "secded-corrected-%")
			b.ReportMetric(mec.CorrectedPct(), "macecc-corrected-%")
			b.ReportMetric(sec.MiscorrectedPct(), "secded-silent-%")
		})
	}
}

// BenchmarkTable2Reencryptions drives each application's writeback stream
// through each counter scheme and reports re-encryptions per 10^9 cycles.
func BenchmarkTable2Reencryptions(b *testing.B) {
	for _, app := range workload.Apps() {
		app := app
		b.Run(app.Name, func(b *testing.B) {
			var rates [3]float64
			kinds := []ctr.Kind{ctr.Split, ctr.Delta, ctr.DualLength}
			for i := 0; i < b.N; i++ {
				for j, k := range kinds {
					r, err := sim.MeasureReencryption(app, k, 2_000_000, int64(i))
					if err != nil {
						b.Fatal(err)
					}
					rates[j] = r.PerBillionCycles
				}
			}
			b.ReportMetric(rates[0], "split/1e9cyc")
			b.ReportMetric(rates[1], "delta/1e9cyc")
			b.ReportMetric(rates[2], "dual/1e9cyc")
		})
	}
}

// BenchmarkFig8IPC runs the Figure 8 design-point sweep per memory-sensitive
// application and reports normalized IPC.
func BenchmarkFig8IPC(b *testing.B) {
	points := sim.StandardDesignPoints()
	for _, app := range workload.Apps() {
		if !app.MemorySensitive {
			continue
		}
		app := app
		b.Run(app.Name, func(b *testing.B) {
			var norm map[string]float64
			for i := 0; i < b.N; i++ {
				var err error
				norm, _, err = sim.NormalizedIPC(app, points, 60_000, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(norm["bmt"], "bmt-ipc")
			b.ReportMetric(norm["mac-ecc"], "macecc-ipc")
			b.ReportMetric(norm["proposed"], "proposed-ipc")
		})
	}
}

// BenchmarkAblationDecodeLatency sweeps the delta-decode latency (§5.3
// synthesized it at 2 cycles) to show IPC is insensitive to it — the reason
// the paper's 2-cycle decoder is "free".
func BenchmarkAblationDecodeLatency(b *testing.B) {
	app, _ := workload.ByName("canneal")
	for _, cycles := range []int{0, 2, 8, 32} {
		cycles := cycles
		name := map[int]string{0: "0cyc", 2: "2cyc-paper", 8: "8cyc", 32: "32cyc"}[cycles]
		b.Run(name, func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				cfg := core.Default(ctr.Delta, core.MACInECC)
				tm, err := core.NewTimingModel(cfg, dram.MustNew(dram.DDR3_1600(4)))
				if err != nil {
					b.Fatal(err)
				}
				tm.DecodeCycles = cycles
				r, err := runCPUOnTiming(app, tm, 60_000, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				ipc = r
			}
			b.ReportMetric(ipc, "ipc")
		})
	}
}

// BenchmarkAblationMetadataCacheSize sweeps the counter/MAC cache (Table 1
// uses 32KB 8-way) under the BMT baseline, which caches MACs too.
func BenchmarkAblationMetadataCacheSize(b *testing.B) {
	app, _ := workload.ByName("canneal")
	for _, kb := range []int{8, 32, 128} {
		kb := kb
		b.Run(map[int]string{8: "8KB", 32: "32KB-paper", 128: "128KB"}[kb], func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				cfg := core.Default(ctr.Monolithic, core.MACInline)
				cfg.MetadataCacheBytes = kb << 10
				tm, err := core.NewTimingModel(cfg, dram.MustNew(dram.DDR3_1600(4)))
				if err != nil {
					b.Fatal(err)
				}
				r, err := runCPUOnTiming(app, tm, 60_000, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				ipc = r
			}
			b.ReportMetric(ipc, "ipc")
		})
	}
}

// BenchmarkAblationFlipAndCheckCost measures the worst-case hardware cost
// model of §3.4: flip-and-check evaluations for single and double faults.
func BenchmarkAblationFlipAndCheckCost(b *testing.B) {
	cfg := DefaultConfig(1 << 20)
	cfg.Key = benchKey()
	for _, faults := range []int{1, 2} {
		faults := faults
		b.Run(map[int]string{1: "single-bit", 2: "double-bit"}[faults], func(b *testing.B) {
			m, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			data := make([]byte, BlockSize)
			if err := m.Write(0, data); err != nil {
				b.Fatal(err)
			}
			dst := make([]byte, BlockSize)
			var checks int
			for i := 0; i < b.N; i++ {
				if err := m.FlipDataBit(0, (i*37)%512); err != nil {
					b.Fatal(err)
				}
				if faults == 2 {
					if err := m.FlipDataBit(0, (i*151+7)%512); err != nil {
						b.Fatal(err)
					}
				}
				info, err := m.Read(0, dst)
				if err != nil {
					b.Fatal(err)
				}
				checks = info.HardwareChecks
			}
			b.ReportMetric(float64(checks), "flip-checks")
		})
	}
}

// BenchmarkAblationReencryptTraffic compares the canneal IPC with and
// without charging background re-encryption traffic, validating the paper's
// claim (§5.2) that re-encryption's performance impact is minimal.
func BenchmarkAblationReencryptTraffic(b *testing.B) {
	app, _ := workload.ByName("canneal")
	for _, charge := range []bool{true, false} {
		charge := charge
		b.Run(map[bool]string{true: "charged", false: "free"}[charge], func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				cfg := core.Default(ctr.Split, core.MACInECC)
				tm, err := core.NewTimingModel(cfg, dram.MustNew(dram.DDR3_1600(4)))
				if err != nil {
					b.Fatal(err)
				}
				tm.ChargeReencryptTraffic = charge
				r, err := runCPUOnTiming(app, tm, 60_000, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				ipc = r
			}
			b.ReportMetric(ipc, "ipc")
		})
	}
}

// BenchmarkAblationDeltaWidth sweeps the delta width / group size design
// space §4.2 leaves open (all fitting one 64-byte metadata block) and
// reports the re-encryption rate of each point under a hot-block stream —
// the storage-vs-overflow trade-off behind the paper's choice of 7 bits.
func BenchmarkAblationDeltaWidth(b *testing.B) {
	app := ablationHotApp()
	points := []struct {
		name  string
		width uint
		group int
	}{
		{"w5-g64", 5, 64},
		{"w6-g64", 6, 64},
		{"w7-g64-paper", 7, 64},
		{"w8-g56", 8, 56},
		{"w12-g38", 12, 38},
	}
	for _, p := range points {
		p := p
		b.Run(p.name, func(b *testing.B) {
			var rate, bits float64
			for i := 0; i < b.N; i++ {
				s, err := ctr.NewDeltaParam(p.width, p.group)
				if err != nil {
					b.Fatal(err)
				}
				gen := app.WritebackGen(int64(i + 1))
				const n = 1_000_000
				for j := 0; j < n; j++ {
					s.Touch(gen.Next())
				}
				cycles := float64(n) * 1000 / app.WB.PerKiloCycle
				rate = float64(s.Stats().Reencryptions) * 1e9 / cycles
				bits = s.MetadataBits()
			}
			b.ReportMetric(rate, "reenc/1e9cyc")
			b.ReportMetric(bits, "bits/block")
		})
	}
}

// BenchmarkAblationSplitMinorWidth sweeps split-counter minor widths for
// the same trade-off on the baseline scheme.
func BenchmarkAblationSplitMinorWidth(b *testing.B) {
	app := ablationHotApp()
	for _, w := range []uint{5, 6, 7} {
		w := w
		b.Run(map[uint]string{5: "w5", 6: "w6", 7: "w7-paper"}[w], func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				s, err := ctr.NewSplitParam(w, 64)
				if err != nil {
					b.Fatal(err)
				}
				gen := app.WritebackGen(int64(i + 1))
				const n = 1_000_000
				for j := 0; j < n; j++ {
					s.Touch(gen.Next())
				}
				cycles := float64(n) * 1000 / app.WB.PerKiloCycle
				rate = float64(s.Stats().Reencryptions) * 1e9 / cycles
			}
			b.ReportMetric(rate, "reenc/1e9cyc")
		})
	}
}

// BenchmarkAblationPrefetch checks whether a next-line prefetcher (absent
// from the paper's Table 1) changes the story: speculative lines need
// verification too, so prefetching amplifies metadata traffic — but it
// amplifies it for baseline and proposed alike.
func BenchmarkAblationPrefetch(b *testing.B) {
	app, _ := workload.ByName("facesim")
	for _, pf := range []bool{false, true} {
		pf := pf
		b.Run(map[bool]string{false: "off-paper", true: "next-line"}[pf], func(b *testing.B) {
			var bmtIPC, propIPC float64
			for i := 0; i < b.N; i++ {
				for _, kind := range []struct {
					cfg core.Config
					dst *float64
				}{
					{core.Default(ctr.Monolithic, core.MACInline), &bmtIPC},
					{core.Default(ctr.Delta, core.MACInECC), &propIPC},
				} {
					tm, err := core.NewTimingModel(kind.cfg, dram.MustNew(dram.DDR3_1600(4)))
					if err != nil {
						b.Fatal(err)
					}
					cpuCfg := cpu.Table1()
					cpuCfg.NextLinePrefetch = pf
					gens := make([]trace.Generator, cpuCfg.Cores)
					for g := range gens {
						gens[g] = app.TraceGen(g, 60_000, int64(i+1))
					}
					sys, err := cpu.New(cpuCfg, gens, tm)
					if err != nil {
						b.Fatal(err)
					}
					*kind.dst = sys.Run().IPC
				}
			}
			b.ReportMetric(bmtIPC, "bmt-ipc")
			b.ReportMetric(propIPC, "proposed-ipc")
			b.ReportMetric(propIPC/bmtIPC, "gain-x")
		})
	}
}

// BenchmarkAblationEnergy quantifies §4.1's energy-efficiency claim: fewer
// metadata transactions mean less DRAM dynamic energy for the same work.
func BenchmarkAblationEnergy(b *testing.B) {
	app, _ := workload.ByName("canneal")
	points := sim.StandardDesignPoints()
	for _, dp := range points[1:] { // skip no-encryption
		dp := dp
		b.Run(dp.Name, func(b *testing.B) {
			var mj float64
			for i := 0; i < b.N; i++ {
				mem := dram.MustNew(dram.DDR3_1600(4))
				tm, err := core.NewTimingModel(dp.Config, mem)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := runCPUOnTiming(app, tm, 60_000, int64(i+1)); err != nil {
					b.Fatal(err)
				}
				mj = mem.Stats().EnergyMJ()
			}
			b.ReportMetric(mj, "dram-mJ")
		})
	}
}

// BenchmarkAblationDataTree reproduces §2.2's motivation for Bonsai Merkle
// trees: the classic Merkle-tree-over-data design pays a full tree walk per
// data access. Reported IPC and transaction counts show what BMT buys
// before either of the paper's optimizations is applied.
func BenchmarkAblationDataTree(b *testing.B) {
	app, _ := workload.ByName("canneal")
	for _, dataTree := range []bool{true, false} {
		dataTree := dataTree
		b.Run(map[bool]string{true: "classic-merkle", false: "bonsai"}[dataTree], func(b *testing.B) {
			var ipc float64
			var txns uint64
			for i := 0; i < b.N; i++ {
				cfg := core.Default(ctr.Monolithic, core.MACInline)
				cfg.DataTree = dataTree
				tm, err := core.NewTimingModel(cfg, dram.MustNew(dram.DDR3_1600(4)))
				if err != nil {
					b.Fatal(err)
				}
				r, err := runCPUOnTiming(app, tm, 60_000, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				ipc = r
				txns = tm.Stats().Transactions()
			}
			b.ReportMetric(ipc, "ipc")
			b.ReportMetric(float64(txns), "dram-txns")
		})
	}
}

// BenchmarkAblationWriteBuffer compares the write-through DRAM model with a
// read-priority write buffer on the write-heavy facesim workload under the
// proposed design: buffered writes keep metadata writebacks and
// re-encryption streams off the read critical path.
func BenchmarkAblationWriteBuffer(b *testing.B) {
	app, _ := workload.ByName("canneal")
	for _, depth := range []int{0, 32} {
		depth := depth
		b.Run(map[int]string{0: "write-through", 32: "buffered-32"}[depth], func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				dcfg := dram.DDR3_1600(4)
				dcfg.WriteBufferDepth = depth
				tm, err := core.NewTimingModel(core.Default(ctr.Delta, core.MACInECC),
					dram.MustNew(dcfg))
				if err != nil {
					b.Fatal(err)
				}
				r, err := runCPUOnTiming(app, tm, 60_000, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				ipc = r
			}
			b.ReportMetric(ipc, "ipc")
		})
	}
}

// ablationHotApp is a canneal-style stream hot enough that every swept
// delta width (up to 12 bits) overflows within 1M writebacks: 8 isolated
// hot blocks receiving ~6k writes each.
func ablationHotApp() workload.App {
	return workload.App{
		Name: "ablation-hot",
		WB: workload.WritebackShape{
			PerKiloCycle: 4.0,
			Classes: []workload.GroupClass{
				{Frac: 0.05, Groups: 8, Dist: workload.FewHot, HotBlocks: 1, Subgroups: 1},
			},
			BackgroundGroups: 16384,
		},
	}
}

// runCPUOnTiming runs an application's traces on the Table 1 CPU over a
// caller-configured timing model, returning per-core IPC. It mirrors
// sim.MeasureIPC but lets ablations tweak TimingModel fields first.
func runCPUOnTiming(app workload.App, tm *core.TimingModel, opsPerCore uint64, seed int64) (float64, error) {
	cpuCfg := cpu.Table1()
	gens := make([]trace.Generator, cpuCfg.Cores)
	for i := range gens {
		gens[i] = app.TraceGen(i, opsPerCore, seed)
	}
	sys, err := cpu.New(cpuCfg, gens, tm)
	if err != nil {
		return 0, err
	}
	return sys.Run().IPC, nil
}

func benchKey() []byte {
	k := make([]byte, KeySize)
	for i := range k {
		k[i] = byte(i + 1)
	}
	return k
}
