package authmem

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
)

func TestFacadeIncrementalRoundTrip(t *testing.T) {
	cfg := testConfig(DeltaEncoding, MACInECC)
	m := newMem(t, cfg)
	m.EnableDeltaTracking()
	if !m.DeltaTrackingEnabled() {
		t.Fatal("tracking not enabled")
	}
	rng := rand.New(rand.NewSource(11))
	truth := make(map[uint64][]byte)
	write := func(n int) {
		for i := 0; i < n; i++ {
			addr := uint64(rng.Intn(2048)) * BlockSize
			data := make([]byte, BlockSize)
			rng.Read(data)
			if err := m.Write(addr, data); err != nil {
				t.Fatal(err)
			}
			truth[addr] = data
		}
	}
	write(100)

	var base, log bytes.Buffer
	if _, err := m.Persist(&base); err != nil {
		t.Fatal(err)
	}
	dl, err := m.NewDeltaLog(&log)
	if err != nil {
		t.Fatal(err)
	}
	var last DeltaStats
	for epoch := 0; epoch < 3; epoch++ {
		write(60)
		last, err = m.AppendDelta(dl)
		if err != nil {
			t.Fatal(err)
		}
	}
	if dl.Records() == 0 || dl.Offset() <= 0 {
		t.Fatal("log did not grow")
	}

	m2, rep, err := ResumeIncremental(cfg, bytes.NewReader(base.Bytes()), bytes.NewReader(log.Bytes()), &last.Root)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != RecoveryClean || rep.Epochs != 3 {
		t.Fatalf("unexpected report %+v", rep)
	}
	dst := make([]byte, BlockSize)
	for addr, want := range truth {
		if _, err := m2.Read(addr, dst); err != nil {
			t.Fatalf("read %#x: %v", addr, err)
		}
		if !bytes.Equal(dst, want) {
			t.Fatalf("block %#x lost across incremental resume", addr)
		}
	}
	// Resume re-enables tracking.
	if !m2.DeltaTrackingEnabled() {
		t.Fatal("tracking not re-enabled after resume")
	}
}

func TestFacadeSyncIncremental(t *testing.T) {
	cfg := testConfig(DeltaEncoding, MACInECC)
	s, err := NewSync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.EnableDeltaTracking()
	var base, log bytes.Buffer
	if _, err := s.Persist(&base); err != nil {
		t.Fatal(err)
	}
	dl, err := s.NewDeltaLog(&log)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x42}, BlockSize)
	if err := s.Write(0, data); err != nil {
		t.Fatal(err)
	}
	if s.DirtyGroups() != 1 {
		t.Fatalf("DirtyGroups = %d", s.DirtyGroups())
	}
	st, err := s.AppendDelta(dl)
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := ResumeIncremental(cfg, bytes.NewReader(base.Bytes()), bytes.NewReader(log.Bytes()), &st.Root)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, BlockSize)
	if _, err := m2.Read(0, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, data) {
		t.Fatal("block lost across sync incremental resume")
	}
}

func TestFacadeShardedIncremental(t *testing.T) {
	cfg := testConfig(DeltaEncoding, MACInECC)
	const shards = 4
	s, err := NewSharded(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	s.EnableDeltaTracking()
	rng := rand.New(rand.NewSource(7))
	truth := make(map[uint64][]byte)
	write := func(n int) {
		for i := 0; i < n; i++ {
			addr := uint64(rng.Intn(int(cfg.Size/BlockSize))) * BlockSize
			data := make([]byte, BlockSize)
			rng.Read(data)
			if err := s.Write(addr, data); err != nil {
				t.Fatal(err)
			}
			truth[addr] = data
		}
	}
	write(200)

	var base bytes.Buffer
	if _, err := s.Persist(&base); err != nil {
		t.Fatal(err)
	}
	logs := make([]bytes.Buffer, shards)
	dls := make([]*DeltaLog, shards)
	for i := range dls {
		dl, err := s.NewShardDeltaLog(i, &logs[i])
		if err != nil {
			t.Fatal(err)
		}
		dls[i] = dl
	}
	for epoch := 0; epoch < 2; epoch++ {
		write(150)
		for i := range dls {
			if _, err := s.AppendDeltaShard(i, dls[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	pin := s.RootDigest()

	wals := make([]io.Reader, shards)
	for i := range wals {
		wals[i] = bytes.NewReader(logs[i].Bytes())
	}
	s2, reports, err := ResumeShardedIncremental(cfg, shards, bytes.NewReader(base.Bytes()), wals, &pin)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != shards {
		t.Fatalf("%d reports", len(reports))
	}
	if CombinedRecoveredRoot(reports) != pin {
		t.Fatal("combined recovered root mismatch")
	}
	dst := make([]byte, BlockSize)
	for addr, want := range truth {
		if _, err := s2.Read(addr, dst); err != nil {
			t.Fatalf("read %#x: %v", addr, err)
		}
		if !bytes.Equal(dst, want) {
			t.Fatalf("block %#x lost across sharded incremental resume", addr)
		}
	}
}

// TestFacadeTypedErrorsRoundTrip is the satellite regression at the public
// surface: *RecoveryError and *CodecMismatchError must both survive
// errors.As through the sharded incremental resume path.
func TestFacadeTypedErrorsRoundTrip(t *testing.T) {
	cfg := testConfig(DeltaEncoding, MACInECC)
	const shards = 2
	s, err := NewSharded(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	s.EnableDeltaTracking()
	if err := s.Write(0, make([]byte, BlockSize)); err != nil {
		t.Fatal(err)
	}
	var base bytes.Buffer
	if _, err := s.Persist(&base); err != nil {
		t.Fatal(err)
	}
	logs := make([]bytes.Buffer, shards)
	for i := 0; i < shards; i++ {
		dl, err := s.NewShardDeltaLog(i, &logs[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Write(uint64(i)*s.ShardSize(), make([]byte, BlockSize)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.AppendDeltaShard(i, dl); err != nil {
			t.Fatal(err)
		}
	}
	raw := logs[0].Bytes()
	raw[len(raw)-1] ^= 1 // break the last record's seal
	wals := []io.Reader{bytes.NewReader(raw), bytes.NewReader(logs[1].Bytes())}
	_, _, err = ResumeShardedIncremental(cfg, shards, bytes.NewReader(base.Bytes()), wals, nil)
	var rerr *RecoveryError
	if !errors.As(err, &rerr) {
		t.Fatalf("*RecoveryError lost at the facade: %v", err)
	}
	if rerr.Report.Status != RecoveryRollback {
		t.Fatalf("status %v", rerr.Report.Status)
	}

	// Codec mismatch through the same path.
	inl := testConfig(DeltaEncoding, InlineMAC)
	inl.ECCCodec = "secded"
	si, err := NewSharded(inl, shards)
	if err != nil {
		t.Fatal(err)
	}
	var base2 bytes.Buffer
	if _, err := si.Persist(&base2); err != nil {
		t.Fatal(err)
	}
	other := inl
	other.ECCCodec = "residue"
	_, _, err = ResumeShardedIncremental(other, shards, bytes.NewReader(base2.Bytes()), nil, nil)
	var cerr *CodecMismatchError
	if !errors.As(err, &cerr) {
		t.Fatalf("*CodecMismatchError lost at the facade: %v", err)
	}
}
