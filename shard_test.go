package authmem

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
)

func shardTestConfig(t testing.TB, size uint64) Config {
	t.Helper()
	cfg := DefaultConfig(size)
	cfg.Key = bytes.Repeat([]byte{0x5A}, KeySize)
	return cfg
}

func newShardedMem(t testing.TB, size uint64, shards int) *ShardedMemory {
	t.Helper()
	m, err := NewSharded(shardTestConfig(t, size), shards)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestShardedMemoryGeometry(t *testing.T) {
	m := newShardedMem(t, 1<<20, 4)
	if m.Shards() != 4 || m.ShardSize() != 1<<18 {
		t.Fatalf("geometry: %d shards of %d bytes", m.Shards(), m.ShardSize())
	}
	if m.ShardOf(0) != 0 || m.ShardOf(1<<18) != 1 || m.ShardOf((1<<20)-BlockSize) != 3 {
		t.Fatal("ShardOf misroutes")
	}
	if _, err := NewSharded(shardTestConfig(t, 1<<20), 3); err == nil {
		t.Fatal("non-power-of-two shard count accepted")
	}
}

// TestShardedReadWriteAtCrossShard drives unaligned byte-granular I/O
// straddling shard boundaries through the io.ReaderAt/WriterAt surface.
func TestShardedReadWriteAtCrossShard(t *testing.T) {
	m := newShardedMem(t, 1<<20, 4)
	rng := rand.New(rand.NewSource(3))
	boundary := int64(m.ShardSize())

	cases := []struct {
		off int64
		n   int
	}{
		{boundary - 5, 10},                            // tiny unaligned straddle
		{boundary - 13, 4096},                         // unaligned, one boundary
		{boundary - BlockSize, BlockSize * 2},         // aligned straddle
		{boundary*2 - 777, int(m.ShardSize()) + 1234}, // crosses two boundaries, unaligned both ends
		{7, 3 * int(m.ShardSize())},                   // nearly the whole region, unaligned start
	}
	for _, c := range cases {
		src := make([]byte, c.n)
		rng.Read(src)
		if n, err := m.WriteAt(src, c.off); err != nil || n != c.n {
			t.Fatalf("WriteAt(%d, +%d) = %d, %v", c.off, c.n, n, err)
		}
		dst := make([]byte, c.n)
		if n, err := m.ReadAt(dst, c.off); err != nil || n != c.n {
			t.Fatalf("ReadAt(%d, +%d) = %d, %v", c.off, c.n, n, err)
		}
		if !bytes.Equal(src, dst) {
			t.Fatalf("bytes [%d, +%d) corrupted across shards", c.off, c.n)
		}
	}

	// Unaligned writes must not disturb their neighbours: re-read one byte
	// on each side of the tiny straddle above.
	probe := make([]byte, 1)
	if _, err := m.ReadAt(probe, boundary-6); err != nil {
		t.Fatal(err)
	}
}

// TestShardedMidSpanFailurePropagates tampers a block inside a cross-shard
// span and requires the global failing address from both the block-span and
// byte-granular paths.
func TestShardedMidSpanFailurePropagates(t *testing.T) {
	m := newShardedMem(t, 1<<20, 4)
	span := make([]byte, 4*int(m.ShardSize())-2*BlockSize)
	for i := range span {
		span[i] = byte(i)
	}
	start := int64(BlockSize)
	if _, err := m.WriteAt(span, start); err != nil {
		t.Fatal(err)
	}
	target := m.ShardSize()*2 + 7*BlockSize
	for _, bit := range []int{9, 200, 333} { // beyond the 2-bit ECC budget
		if err := m.FlipDataBit(target, bit); err != nil {
			t.Fatal(err)
		}
	}
	var ie *IntegrityError
	err := m.ReadBlocks(BlockSize, make([]byte, len(span)-int(start)%BlockSize))
	if !errors.As(err, &ie) || ie.Addr != target {
		t.Fatalf("ReadBlocks over tampered block: %v (want IntegrityError at %#x)", err, target)
	}
	if _, err := m.ReadAt(make([]byte, len(span)), start); !errors.As(err, &ie) {
		t.Fatalf("ReadAt over tampered block: %v", err)
	}
	// A fresh write through the span path releases the block.
	if err := m.WriteBlocks(target, make([]byte, BlockSize)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Read(target, make([]byte, BlockSize)); err != nil {
		t.Fatalf("read after overwrite: %v", err)
	}
}

func TestShardedMemoryPersistResume(t *testing.T) {
	cfg := shardTestConfig(t, 1<<20)
	m, err := NewSharded(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 64*BlockSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	off := int64(m.ShardSize()) - 3*BlockSize // straddles shards 0 and 1
	if _, err := m.WriteAt(data, off); err != nil {
		t.Fatal(err)
	}
	var img bytes.Buffer
	digest, err := m.Persist(&img)
	if err != nil {
		t.Fatal(err)
	}
	r, err := ResumeSharded(cfg, 4, bytes.NewReader(img.Bytes()), &digest)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := r.ReadAt(got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data corrupted across sharded persist/resume")
	}
	if r.RootDigest() != digest {
		t.Fatal("resumed root digest differs")
	}
}

// TestShardedWithShard reaches the per-shard attack surface through the
// locked callback.
func TestShardedWithShard(t *testing.T) {
	m := newShardedMem(t, 1<<20, 4)
	global := m.ShardSize()*3 + 2*BlockSize
	if err := m.Write(global, make([]byte, BlockSize)); err != nil {
		t.Fatal(err)
	}
	local := global - m.ShardSize()*3
	m.WithShard(3, func(inner *Memory) {
		snap, err := inner.Snapshot(local)
		if err != nil {
			t.Fatalf("snapshot inside shard: %v", err)
		}
		if err := inner.Replay(snap); err != nil {
			t.Fatal(err)
		}
	})
	// Replaying the current state is not detectable (nothing changed) —
	// the point is the surface is reachable; stats should show traffic.
	if m.Stats().Writes != 1 {
		t.Fatal("per-shard stats not merged")
	}
}

// TestShardedZeroAllocObservability: Stats, QuarantineCount, and the empty
// QuarantineList must not allocate — observability shouldn't tax traffic.
func TestShardedZeroAllocObservability(t *testing.T) {
	m := newShardedMem(t, 1<<20, 4)
	if err := m.Write(0, make([]byte, BlockSize)); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if m.QuarantineList() != nil {
			t.Fatal("unexpected quarantine")
		}
	}); avg != 0 {
		t.Fatalf("empty QuarantineList allocates %.1f objects/op", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { m.QuarantineCount() }); avg != 0 {
		t.Fatalf("QuarantineCount allocates %.1f objects/op", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { m.Stats() }); avg != 0 {
		t.Fatalf("Stats allocates %.1f objects/op", avg)
	}

	// The same guarantees hold for the plain Memory and SyncMemory.
	sm, err := NewSync(shardTestConfig(t, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if sm.QuarantineList() != nil {
			t.Fatal("unexpected quarantine")
		}
		sm.Stats()
	}); avg != 0 {
		t.Fatalf("SyncMemory observability allocates %.1f objects/op", avg)
	}
}

// BenchmarkShardedStats guards the merge-on-read observability cost.
func BenchmarkShardedStats(b *testing.B) {
	m := newShardedMem(b, 1<<20, 4)
	if err := m.Write(0, make([]byte, BlockSize)); err != nil {
		b.Fatal(err)
	}
	b.Run("stats", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Stats()
		}
	})
	b.Run("quarantine-list-empty", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.QuarantineList()
		}
	})
}

// TestShardedMemoryConcurrent exercises the public surface from many
// goroutines (meaningful under -race).
func TestShardedMemoryConcurrent(t *testing.T) {
	m := newShardedMem(t, 1<<20, 4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			buf := make([]byte, 300)
			for i := 0; i < 200; i++ {
				off := int64(rng.Intn(1<<20 - len(buf)))
				if w%2 == 0 {
					rng.Read(buf)
					if _, err := m.WriteAt(buf, off); err != nil {
						t.Error(err)
						return
					}
				} else {
					if _, err := m.ReadAt(buf, off); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if m.Stats().IntegrityFailures != 0 {
		t.Fatal("integrity failures under clean concurrent traffic")
	}
}
