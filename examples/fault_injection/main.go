// Fault injection: a cold-boot / failing-DIMM scenario over the MAC-in-ECC
// memory, showing §3.3's patrol scrubbing (cheap parity screen, targeted
// repair) and the flip-and-check correction budget, compared against the
// SEC-DED baseline.
//
// Run with:
//
//	go run ./examples/fault_injection
package main

import (
	"crypto/rand"
	"fmt"
	"log"
	mrand "math/rand"

	"authmem"
)

const blocks = 2048

func build(placement authmem.MACPlacement) *authmem.Memory {
	cfg := authmem.DefaultConfig(blocks * authmem.BlockSize)
	cfg.Placement = placement
	cfg.Key = make([]byte, authmem.KeySize)
	if _, err := rand.Read(cfg.Key); err != nil {
		log.Fatal(err)
	}
	mem, err := authmem.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	data := make([]byte, authmem.BlockSize)
	for i := uint64(0); i < blocks; i++ {
		mrand.New(mrand.NewSource(int64(i))).Read(data)
		if err := mem.Write(i*authmem.BlockSize, data); err != nil {
			log.Fatal(err)
		}
	}
	return mem
}

func main() {
	mem := build(authmem.MACInECC)

	// A failing DIMM sprays single-bit faults over 1% of blocks.
	rng := mrand.New(mrand.NewSource(7))
	faulted := map[uint64]bool{}
	for len(faulted) < blocks/100 {
		b := uint64(rng.Intn(blocks))
		if faulted[b] {
			continue
		}
		faulted[b] = true
		if err := mem.FlipDataBit(b*authmem.BlockSize, rng.Intn(512)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("injected single-bit faults into %d of %d blocks\n", len(faulted), blocks)

	// The patrol scrubber screens every block with the 1-bit parity and
	// repairs what it flags — without recomputing MACs for clean blocks.
	rep, err := mem.Scrub()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scrub pass: %d scanned, %d flagged by parity, %d corrected, %d uncorrectable\n",
		rep.BlocksScanned, rep.ParityFlagged, rep.Corrected, rep.Uncorrectable)

	// Everything reads clean afterwards.
	buf := make([]byte, authmem.BlockSize)
	var corrections int
	for i := uint64(0); i < blocks; i++ {
		info, err := mem.Read(i*authmem.BlockSize, buf)
		if err != nil {
			log.Fatalf("block %d unreadable after scrub: %v", i, err)
		}
		corrections += info.CorrectedDataBits
	}
	fmt.Printf("full readback clean; %d residual corrections needed\n", corrections)

	// Now the case SEC-DED cannot handle: two flips landing in one
	// 8-byte word (e.g. a failing column pair).
	victim := uint64(100) * authmem.BlockSize
	if err := mem.FlipDataBit(victim, 8*8+3); err != nil { // word 1, bit 3
		log.Fatal(err)
	}
	if err := mem.FlipDataBit(victim, 8*8+19); err != nil { // word 1, bit 19
		log.Fatal(err)
	}
	info, err := mem.Read(victim, buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("double fault in one word: MAC-in-ECC corrected %d bits (%d flip-and-check steps)\n",
		info.CorrectedDataBits, info.HardwareChecks)

	// The same fault against the SEC-DED baseline is detected but NOT
	// correctable: the read is refused.
	base := build(authmem.InlineMAC)
	if err := base.FlipDataBit(victim, 8*8+3); err != nil {
		log.Fatal(err)
	}
	if err := base.FlipDataBit(victim, 8*8+19); err != nil {
		log.Fatal(err)
	}
	if _, err := base.Read(victim, buf); err != nil {
		fmt.Println("same fault on SEC-DED baseline:", err)
	} else {
		log.Fatal("SEC-DED silently accepted a double fault!")
	}
}
