// Quickstart: create an authenticated encrypted memory, store data, watch
// tampering and replay attacks get caught, and see a memory fault healed.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"crypto/rand"
	"fmt"
	"log"

	"authmem"
)

func main() {
	// A 16MB protected region with the paper's recommended design:
	// delta-encoded counters + MAC-in-ECC.
	cfg := authmem.DefaultConfig(16 << 20)
	cfg.Key = make([]byte, authmem.KeySize)
	if _, err := rand.Read(cfg.Key); err != nil {
		log.Fatal(err)
	}
	mem, err := authmem.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Ordinary use: write and read back a block.
	secret := make([]byte, authmem.BlockSize)
	copy(secret, "attack at dawn")
	const addr = 0x2000
	if err := mem.Write(addr, secret); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, authmem.BlockSize)
	if _, err := mem.Read(addr, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round trip ok: %q\n", buf[:14])

	// 2. A DRAM fault: one bit flips. The MAC doubles as an ECC code, so
	// the read transparently repairs it.
	if err := mem.FlipDataBit(addr, 42); err != nil {
		log.Fatal(err)
	}
	info, err := mem.Read(addr, buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single-bit fault: corrected %d bit(s) in %d flip-and-check steps\n",
		info.CorrectedDataBits, info.HardwareChecks)

	// 3. Tampering: an attacker rewrites ciphertext wholesale. Too many
	// flips for correction — the read is refused.
	for bit := 0; bit < 48; bit += 3 {
		if err := mem.FlipDataBit(addr, bit); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := mem.Read(addr, buf); err != nil {
		fmt.Println("tampering detected:", err)
	} else {
		log.Fatal("tampering went undetected!")
	}

	// Restore clean data for the replay demo.
	if err := mem.Write(addr, secret); err != nil {
		log.Fatal(err)
	}

	// 4. Replay: the attacker snapshots DRAM (data + MAC + counters),
	// lets the program overwrite, then restores the stale snapshot.
	// The Bonsai Merkle tree's on-chip root catches it.
	snap, err := mem.Snapshot(addr)
	if err != nil {
		log.Fatal(err)
	}
	copy(secret, "retreat at dusk")
	if err := mem.Write(addr, secret); err != nil {
		log.Fatal(err)
	}
	if err := mem.Replay(snap); err != nil {
		log.Fatal(err)
	}
	if _, err := mem.Read(addr, buf); err != nil {
		fmt.Println("replay detected:  ", err)
	} else {
		log.Fatal("replay went undetected!")
	}

	// 5. Storage cost of all this protection (Figure 1).
	o, err := authmem.ComputeOverhead(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("metadata overhead: %.2f%% of the protected region (paper baseline: ~22%%)\n",
		o.EncryptionOverheadPct())
}
