// Secure key-value store: a small fixed-slot KV store whose backing memory
// is the authenticated encrypted memory, demonstrating how a data structure
// survives on attacker-controlled DRAM.
//
// This mirrors the paper's motivating deployment: the host's physical
// memory is untrusted (bus snooping, cold-boot), but the application sees
// ordinary load/store semantics with confidentiality, integrity, and
// freshness enforced at the 64-byte block level.
//
// Run with:
//
//	go run ./examples/secure_kvstore
package main

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"log"

	"authmem"
)

// Store is a fixed-capacity open-addressed hash table over secure memory.
// Each slot is one 64-byte block: 2-byte key length, 14-byte key, 2-byte
// value length, 46-byte value.
type Store struct {
	mem   *authmem.Memory
	slots uint64
}

const (
	maxKey   = 14
	maxValue = 46
)

// NewStore creates a store with the given slot count.
func NewStore(slots uint64) (*Store, error) {
	cfg := authmem.DefaultConfig(slots * authmem.BlockSize)
	cfg.Key = make([]byte, authmem.KeySize)
	if _, err := rand.Read(cfg.Key); err != nil {
		return nil, err
	}
	mem, err := authmem.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Store{mem: mem, slots: slots}, nil
}

func (s *Store) hash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64() % s.slots
}

// Put stores a value under a key.
func (s *Store) Put(key, value string) error {
	if len(key) == 0 || len(key) > maxKey {
		return fmt.Errorf("key length %d out of range 1..%d", len(key), maxKey)
	}
	if len(value) > maxValue {
		return fmt.Errorf("value length %d exceeds %d", len(value), maxValue)
	}
	var block [authmem.BlockSize]byte
	for probe := uint64(0); probe < s.slots; probe++ {
		slot := (s.hash(key) + probe) % s.slots
		if _, err := s.mem.Read(slot*authmem.BlockSize, block[:]); err != nil {
			return err
		}
		klen := binary.LittleEndian.Uint16(block[0:2])
		existing := string(block[2 : 2+klen])
		if klen != 0 && existing != key {
			continue // occupied by another key
		}
		binary.LittleEndian.PutUint16(block[0:2], uint16(len(key)))
		copy(block[2:16], key)
		binary.LittleEndian.PutUint16(block[16:18], uint16(len(value)))
		clear(block[18:])
		copy(block[18:], value)
		return s.mem.Write(slot*authmem.BlockSize, block[:])
	}
	return errors.New("store full")
}

// Get fetches a key's value.
func (s *Store) Get(key string) (string, error) {
	var block [authmem.BlockSize]byte
	for probe := uint64(0); probe < s.slots; probe++ {
		slot := (s.hash(key) + probe) % s.slots
		if _, err := s.mem.Read(slot*authmem.BlockSize, block[:]); err != nil {
			return "", err
		}
		klen := binary.LittleEndian.Uint16(block[0:2])
		if klen == 0 {
			return "", fmt.Errorf("key %q not found", key)
		}
		if string(block[2:2+klen]) != key {
			continue
		}
		vlen := binary.LittleEndian.Uint16(block[16:18])
		return string(block[18 : 18+vlen]), nil
	}
	return "", fmt.Errorf("key %q not found", key)
}

func main() {
	store, err := NewStore(4096)
	if err != nil {
		log.Fatal(err)
	}

	// Ordinary operation.
	pairs := map[string]string{
		"api-token":  "tok_9f8e7d6c5b4a",
		"db-passwd":  "correct horse battery staple",
		"session-42": "alice@example.com",
	}
	for k, v := range pairs {
		if err := store.Put(k, v); err != nil {
			log.Fatal(err)
		}
	}
	for k, want := range pairs {
		got, err := store.Get(k)
		if err != nil {
			log.Fatal(err)
		}
		if got != want {
			log.Fatalf("%s: got %q want %q", k, got, want)
		}
	}
	fmt.Printf("stored and verified %d secrets\n", len(pairs))

	// Update a value, then have the attacker roll DRAM back to the old
	// one: the stale token must not be accepted.
	tokenSlot := store.hash("api-token") * authmem.BlockSize
	staleSnap, err := store.mem.Snapshot(tokenSlot)
	if err != nil {
		log.Fatal(err)
	}
	if err := store.Put("api-token", "tok_ROTATED_0001"); err != nil {
		log.Fatal(err)
	}
	goodSnap, err := store.mem.Snapshot(tokenSlot)
	if err != nil {
		log.Fatal(err)
	}
	if err := store.mem.Replay(staleSnap); err != nil {
		log.Fatal(err)
	}
	if _, err := store.Get("api-token"); err != nil {
		fmt.Println("rollback of rotated token rejected:", err)
	} else {
		log.Fatal("rollback attack succeeded!")
	}
	// Once a replay is detected the region stays poisoned (hardware would
	// machine-check); put DRAM back to the state the tree expects.
	if err := store.mem.Replay(goodSnap); err != nil {
		log.Fatal(err)
	}

	// Memory faults, by contrast, heal transparently.
	if err := store.Put("api-token", "tok_ROTATED_0002"); err != nil {
		log.Fatal(err)
	}
	if err := store.mem.FlipDataBit(tokenSlot, 137); err != nil {
		log.Fatal(err)
	}
	v, err := store.Get("api-token")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after a DRAM bit flip, token still reads back: %q\n", v)

	st := store.mem.Stats()
	fmt.Printf("engine stats: %d reads, %d writes, %d integrity failures, %d bits corrected\n",
		st.Reads, st.Writes, st.IntegrityFailures, st.CorrectedDataBits)
}
