// Tree designs: a guided tour of the three integrity-tree generations the
// paper's §2.2 walks through — the classic Merkle tree over data, the
// Bonsai Merkle tree over counters, and the paper's delta-compacted BMT —
// measuring what each costs in storage and in DRAM traffic on an identical
// access stream.
//
// Run with:
//
//	go run ./examples/tree_designs
package main

import (
	"fmt"
	"log"

	"authmem/internal/core"
	"authmem/internal/cpu"
	"authmem/internal/ctr"
	"authmem/internal/dram"
	"authmem/internal/stats"
	"authmem/internal/trace"
	"authmem/internal/workload"
)

func main() {
	type design struct {
		name string
		cfg  core.Config
	}
	classic := core.Default(ctr.Monolithic, core.MACInline)
	classic.DataTree = true
	designs := []design{
		{"classic Merkle (over data)", classic},
		{"Bonsai Merkle (over counters)", core.Default(ctr.Monolithic, core.MACInline)},
		{"proposed (delta + MAC-in-ECC)", core.Default(ctr.Delta, core.MACInECC)},
	}

	app, _ := workload.ByName("canneal")
	const ops = 200_000

	fmt.Println("Three generations of memory integrity trees on a canneal-like stream")
	fmt.Println("(512MB protected region, Table 1 platform):")
	fmt.Println()
	tb := stats.NewTable("design", "storage overhead", "tree levels",
		"DRAM txns", "metadata hit rate", "IPC")
	for _, d := range designs {
		o, err := core.ComputeOverhead(d.cfg)
		if err != nil {
			log.Fatal(err)
		}
		tm, err := core.NewTimingModel(d.cfg, dram.MustNew(dram.DDR3_1600(4)))
		if err != nil {
			log.Fatal(err)
		}
		cpuCfg := cpu.Table1()
		gens := make([]trace.Generator, cpuCfg.Cores)
		for i := range gens {
			gens[i] = app.TraceGen(i, ops, 1)
		}
		sys, err := cpu.New(cpuCfg, gens, tm)
		if err != nil {
			log.Fatal(err)
		}
		res := sys.Run()
		tb.AddRow(d.name,
			stats.Pct(o.EncryptionOverheadPct()),
			o.TreeLevels,
			tm.Stats().Transactions(),
			fmt.Sprintf("%.3f", tm.MetadataCacheStats().HitRate()),
			fmt.Sprintf("%.4f", res.IPC))
	}
	fmt.Print(tb)
	fmt.Println()
	fmt.Println("Each generation removes work: Bonsai trees shrink the tree ~9x by")
	fmt.Println("covering counters instead of data (Rogers et al.); delta encoding")
	fmt.Println("shrinks it ~8x again and drops a level; MAC-in-ECC removes the MAC")
	fmt.Println("fetch entirely. The rightmost columns show the traffic and IPC that")
	fmt.Println("storage translates into.")
}
