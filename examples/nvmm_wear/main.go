// NVMM wear: quantifies §2.2's claim that delta encoding is friendlier to
// non-volatile main memory than split counters, by counting the extra
// block writes that counter-overflow re-encryptions force under an
// identical write stream.
//
// On NVMM every write consumes endurance, so a counter scheme that
// re-encrypts a 4KB group on overflow amplifies wear: the application's
// one write becomes 64 writes. This example replays the dedup-like
// workload's post-LLC write stream against all three compact schemes and
// reports write amplification.
//
// Run with:
//
//	go run ./examples/nvmm_wear
package main

import (
	"bytes"
	"crypto/rand"
	"fmt"
	"log"

	"authmem"
	"authmem/internal/ctr"
	"authmem/internal/stats"
	"authmem/internal/workload"
)

func main() {
	app, ok := workload.ByName("dedup")
	if !ok {
		log.Fatal("dedup workload missing")
	}
	const writes = 8_000_000

	fmt.Printf("replaying %dM DRAM writebacks of a dedup-like stream\n\n", writes/1_000_000)
	tb := stats.NewTable("scheme", "re-encryptions", "extra block writes",
		"write amplification", "resets", "re-encodes")
	for _, kind := range []ctr.Kind{ctr.Split, ctr.Delta, ctr.DualLength} {
		scheme, err := ctr.NewScheme(kind)
		if err != nil {
			log.Fatal(err)
		}
		gen := app.WritebackGen(1)
		for i := 0; i < writes; i++ {
			scheme.Touch(gen.Next())
		}
		st := scheme.Stats()
		amp := 1 + float64(st.ReencryptedBlocks)/float64(writes)
		tb.AddRow(scheme.Name(), st.Reencryptions, st.ReencryptedBlocks,
			fmt.Sprintf("%.4fx", amp), st.Resets, st.Reencodes)
	}
	fmt.Print(tb)
	fmt.Println("\nEvery re-encryption rewrites a whole 4KB group (64 blocks). Delta")
	fmt.Println("encoding's resets and re-encodes avoid most of them, and dual-length's")
	fmt.Println("reserve absorbs single-subgroup hot spots entirely — the paper's")
	fmt.Println("NVMM-friendliness argument (§2.2), quantified.")

	powerCycle()
}

// powerCycle demonstrates the other NVMM property: the encrypted region,
// its counters, and the integrity tree ARE the persistent state. A power
// cycle is a Persist/Resume pair; rolling the medium back to an older image
// is caught by pinning the root digest in trusted storage.
func powerCycle() {
	fmt.Println("\n--- NVMM power cycle ---")
	cfg := authmem.DefaultConfig(4 << 20)
	cfg.Key = make([]byte, authmem.KeySize)
	if _, err := rand.Read(cfg.Key); err != nil {
		log.Fatal(err)
	}
	mem, err := authmem.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	record := make([]byte, authmem.BlockSize)
	copy(record, "balance: 1000")
	if err := mem.Write(0, record); err != nil {
		log.Fatal(err)
	}
	var oldImage bytes.Buffer
	if _, err := mem.Persist(&oldImage); err != nil {
		log.Fatal(err)
	}
	copy(record, "balance: 0   ")
	if err := mem.Write(0, record); err != nil {
		log.Fatal(err)
	}
	var curImage bytes.Buffer
	digest, err := mem.Persist(&curImage)
	if err != nil {
		log.Fatal(err)
	}

	// Legitimate power cycle: resume the current image under the pinned
	// digest.
	resumed, err := authmem.Resume(cfg, bytes.NewReader(curImage.Bytes()), &digest)
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, authmem.BlockSize)
	if _, err := resumed.Read(0, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed cleanly: %q\n", buf[:13])

	// Attack: swap the NVMM module contents for the older image.
	if _, err := authmem.Resume(cfg, bytes.NewReader(oldImage.Bytes()), &digest); err != nil {
		fmt.Println("rollback to stale image rejected:", err)
	} else {
		log.Fatal("stale image resumed under the pinned digest!")
	}
}
