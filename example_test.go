package authmem_test

import (
	"bytes"
	"fmt"

	"authmem"
)

func demoKey() []byte {
	k := make([]byte, authmem.KeySize)
	for i := range k {
		k[i] = byte(i + 1)
	}
	return k
}

// Example shows the basic write/verify/read cycle.
func Example() {
	cfg := authmem.DefaultConfig(1 << 20) // 1MB protected region
	cfg.Key = demoKey()
	mem, err := authmem.New(cfg)
	if err != nil {
		panic(err)
	}

	block := make([]byte, authmem.BlockSize)
	copy(block, "hello, untrusted DRAM")
	if err := mem.Write(0x1000, block); err != nil {
		panic(err)
	}

	out := make([]byte, authmem.BlockSize)
	if _, err := mem.Read(0x1000, out); err != nil {
		panic(err)
	}
	fmt.Println(string(out[:21]))
	// Output: hello, untrusted DRAM
}

// ExampleMemory_FlipDataBit shows a DRAM fault being healed by the
// MAC-in-ECC flip-and-check corrector.
func ExampleMemory_FlipDataBit() {
	cfg := authmem.DefaultConfig(1 << 20)
	cfg.Key = demoKey()
	mem, _ := authmem.New(cfg)

	mem.Write(0, bytes.Repeat([]byte{0xAB}, authmem.BlockSize))
	mem.FlipDataBit(0, 137) // a cosmic ray

	out := make([]byte, authmem.BlockSize)
	info, err := mem.Read(0, out)
	fmt.Println(err, info.CorrectedDataBits, out[17] == 0xAB)
	// Output: <nil> 1 true
}

// ExampleMemory_Replay shows the rollback attack the integrity tree exists
// to stop.
func ExampleMemory_Replay() {
	cfg := authmem.DefaultConfig(1 << 20)
	cfg.Key = demoKey()
	mem, _ := authmem.New(cfg)

	mem.Write(0, []byte("v1 — old password..............................................")[:64])
	snapshot, _ := mem.Snapshot(0) // attacker records DRAM
	mem.Write(0, []byte("v2 — new password..............................................")[:64])
	mem.Replay(snapshot) // attacker restores the stale bytes

	out := make([]byte, authmem.BlockSize)
	_, err := mem.Read(0, out)
	_, isIntegrityError := err.(*authmem.IntegrityError)
	fmt.Println(isIntegrityError)
	// Output: true
}

// ExampleComputeOverhead reproduces the paper's headline storage numbers.
func ExampleComputeOverhead() {
	proposed := authmem.DefaultConfig(512 << 20)
	proposed.Key = demoKey()
	baseline := proposed
	baseline.Scheme = authmem.Monolithic
	baseline.Placement = authmem.InlineMAC

	b, _ := authmem.ComputeOverhead(baseline)
	p, _ := authmem.ComputeOverhead(proposed)
	fmt.Printf("baseline %.1f%%, proposed %.1f%%\n",
		b.EncryptionOverheadPct(), p.EncryptionOverheadPct())
	// Output: baseline 23.7%, proposed 1.8%
}
