package authmem

// Hot-path microbenchmarks for the functional engine itself (as opposed to
// the paper-figure harnesses in bench_test.go): per-operation latency and
// allocation counts for the read/write/scrub paths, across every scheme ×
// placement point. cmd/paperbench -hotpath runs these same shapes and
// writes BENCH_hotpath.json; EXPERIMENTS.md records the tracked numbers.

import (
	"math/rand"
	"testing"

	"authmem/internal/ctr"
)

func hotPoints() []struct {
	name      string
	scheme    CounterScheme
	placement MACPlacement
} {
	return []struct {
		name      string
		scheme    CounterScheme
		placement MACPlacement
	}{
		{"mono-inline", Monolithic, InlineMAC},
		{"mono-macecc", Monolithic, MACInECC},
		{"split-macecc", SplitCounter, MACInECC},
		{"delta-inline", DeltaEncoding, InlineMAC},
		{"delta-macecc", DeltaEncoding, MACInECC},
		{"dual-macecc", DualLengthDelta, MACInECC},
	}
}

func hotMemory(b *testing.B, scheme CounterScheme, placement MACPlacement) *Memory {
	b.Helper()
	cfg := DefaultConfig(1 << 20)
	cfg.Scheme = scheme
	cfg.Placement = placement
	cfg.Key = benchKey()
	m, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkHotWrite measures single-block Write over a working set large
// enough to defeat the pad cache but small enough to stay in the arena's
// first chunks.
func BenchmarkHotWrite(b *testing.B) {
	for _, p := range hotPoints() {
		b.Run(p.name, func(b *testing.B) {
			m := hotMemory(b, p.scheme, p.placement)
			buf := make([]byte, BlockSize)
			rand.New(rand.NewSource(1)).Read(buf)
			const blocks = 1024
			b.ReportAllocs()
			b.SetBytes(BlockSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.Write(uint64(i%blocks)*BlockSize, buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHotRead measures steady-state single-block Read of resident
// blocks. The engine read path is required to be allocation-free.
func BenchmarkHotRead(b *testing.B) {
	for _, p := range hotPoints() {
		b.Run(p.name, func(b *testing.B) {
			m := hotMemory(b, p.scheme, p.placement)
			buf := make([]byte, BlockSize)
			rand.New(rand.NewSource(2)).Read(buf)
			const blocks = 1024
			for i := 0; i < blocks; i++ {
				if err := m.Write(uint64(i)*BlockSize, buf); err != nil {
					b.Fatal(err)
				}
			}
			dst := make([]byte, BlockSize)
			b.ReportAllocs()
			b.SetBytes(BlockSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Read(uint64(i%blocks)*BlockSize, dst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHotWriteBlocks measures the batched write path, one group
// (4KB) per operation.
func BenchmarkHotWriteBlocks(b *testing.B) {
	for _, p := range hotPoints() {
		b.Run(p.name, func(b *testing.B) {
			m := hotMemory(b, p.scheme, p.placement)
			span := make([]byte, ctr.GroupBlocks*BlockSize)
			rand.New(rand.NewSource(3)).Read(span)
			const groups = 16
			b.ReportAllocs()
			b.SetBytes(int64(len(span)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				addr := uint64(i%groups) * uint64(len(span))
				if err := m.WriteBlocks(addr, span); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHotReadBlocks measures the batched read path, one group (4KB)
// per operation.
func BenchmarkHotReadBlocks(b *testing.B) {
	for _, p := range hotPoints() {
		b.Run(p.name, func(b *testing.B) {
			m := hotMemory(b, p.scheme, p.placement)
			span := make([]byte, ctr.GroupBlocks*BlockSize)
			rand.New(rand.NewSource(4)).Read(span)
			const groups = 16
			for g := 0; g < groups; g++ {
				if err := m.WriteBlocks(uint64(g)*uint64(len(span)), span); err != nil {
					b.Fatal(err)
				}
			}
			dst := make([]byte, len(span))
			b.ReportAllocs()
			b.SetBytes(int64(len(span)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				addr := uint64(i%groups) * uint64(len(span))
				if err := m.ReadBlocks(addr, dst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHotScrub measures full-pass patrol scrubbing of a 4MB resident
// region, serial vs sharded.
func BenchmarkHotScrub(b *testing.B) {
	prep := func(b *testing.B) *Memory {
		cfg := DefaultConfig(4 << 20)
		cfg.Key = benchKey()
		m, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		span := make([]byte, ctr.GroupBlocks*BlockSize)
		rand.New(rand.NewSource(5)).Read(span)
		for addr := uint64(0); addr < cfg.Size; addr += uint64(len(span)) {
			if err := m.WriteBlocks(addr, span); err != nil {
				b.Fatal(err)
			}
		}
		return m
	}
	b.Run("serial", func(b *testing.B) {
		m := prep(b)
		blocks := int64(m.Stats().Writes)
		b.ReportAllocs()
		b.SetBytes(blocks * BlockSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Scrub(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		m := prep(b)
		blocks := int64(m.Stats().Writes)
		b.ReportAllocs()
		b.SetBytes(blocks * BlockSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.ParallelScrub(0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestHotReadZeroAllocs pins the steady-state Read path at zero heap
// allocations per operation for the paper's design point.
func TestHotReadZeroAllocs(t *testing.T) {
	cfg := DefaultConfig(1 << 20)
	cfg.Key = benchKey()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, BlockSize)
	for i := 0; i < 64; i++ {
		if err := m.Write(uint64(i)*BlockSize, buf); err != nil {
			t.Fatal(err)
		}
	}
	dst := make([]byte, BlockSize)
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		if _, err := m.Read(uint64(i%64)*BlockSize, dst); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state Read allocates %.1f times per op, want 0", allocs)
	}
}
