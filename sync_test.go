package authmem

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestSyncMemoryConcurrentUse(t *testing.T) {
	cfg := testConfig(DeltaEncoding, MACInECC)
	m, err := NewSync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 8 goroutines hammer disjoint regions; every read must return the
	// goroutine's own last write. Run under -race in CI.
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g) * 128 * BlockSize
			buf := make([]byte, BlockSize)
			dst := make([]byte, BlockSize)
			for i := 0; i < 200; i++ {
				addr := base + uint64(i%128)*BlockSize
				buf[0], buf[1] = byte(g), byte(i)
				if err := m.Write(addr, buf); err != nil {
					errs <- err
					return
				}
				if _, err := m.Read(addr, dst); err != nil {
					errs <- err
					return
				}
				if dst[0] != byte(g) || dst[1] != byte(i) {
					errs <- fmt.Errorf("goroutine %d: stale read", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Writes != 8*200 || st.Reads != 8*200 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSyncMemoryDelegation(t *testing.T) {
	cfg := testConfig(DeltaEncoding, MACInECC)
	m, err := NewSync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// ReadAt/WriteAt and Scrub round-trip through the wrapper.
	data := []byte("synchronized secret")
	if _, err := m.WriteAt(data, 100); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := m.ReadAt(got, 100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("ReadAt through wrapper wrong")
	}
	if _, err := m.Scrub(); err != nil {
		t.Fatal(err)
	}
	var img bytes.Buffer
	if _, err := m.Persist(&img); err != nil {
		t.Fatal(err)
	}
	if img.Len() == 0 {
		t.Fatal("empty image")
	}
	ran := false
	m.Locked(func(inner *Memory) {
		if inner == nil {
			t.Fatal("Locked passed a nil Memory")
		}
		ran = true
	})
	if !ran {
		t.Fatal("Locked did not invoke the callback")
	}
}

func TestNewSyncBadConfig(t *testing.T) {
	if _, err := NewSync(Config{}); err == nil {
		t.Fatal("invalid config should fail")
	}
}
