package client_test

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"authmem"
	"authmem/client"
	"authmem/internal/server"
	"authmem/internal/wire"
)

func testKey() []byte { return bytes.Repeat([]byte{0x5A}, authmem.KeySize) }

func newBackend(t testing.TB, size uint64) *authmem.SyncMemory {
	t.Helper()
	cfg := authmem.DefaultConfig(size)
	cfg.Key = testKey()
	m, err := authmem.NewSync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newStack(t testing.TB, cfg server.Config, opts client.Options) (*server.Server, *client.Client) {
	t.Helper()
	if cfg.Backend == nil {
		cfg.Backend = newBackend(t, 1<<21)
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	opts.Dial = s.DialLoopback
	c, err := client.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return s, c
}

func pattern(b byte, n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = b ^ byte(i)
	}
	return p
}

func TestClientRoundTrip(t *testing.T) {
	_, c := newStack(t, server.Config{}, client.Options{})

	data := pattern(0x42, 4*wire.BlockBytes)
	if _, err := c.Write(4096, data); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(data))
	info, err := c.Read(4096, dst)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != wire.StatusOK || !bytes.Equal(dst, data) {
		t.Fatalf("read: status=%v equal=%v", info.Status, bytes.Equal(dst, data))
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	snap, err := c.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if snap.ProtoVersion != wire.Version || snap.Server.WriteOps == 0 || snap.Engine.Writes == 0 {
		t.Fatalf("stats snapshot: %+v", snap.Server)
	}
	if _, err := c.RootDigest(); err != nil {
		t.Fatal(err)
	}
}

func TestClientValidation(t *testing.T) {
	_, c := newStack(t, server.Config{}, client.Options{})
	if _, err := c.Read(3, make([]byte, wire.BlockBytes)); err == nil {
		t.Fatal("unaligned address accepted")
	}
	if _, err := c.Read(0, make([]byte, 17)); err == nil {
		t.Fatal("non-block span accepted")
	}
	if _, err := c.Write(0, nil); err == nil {
		t.Fatal("empty write accepted")
	}
}

// TestClientSpanSplitting pushes a span larger than one wire frame through
// Read/Write and checks it survives the chunked, pipelined round trip.
func TestClientSpanSplitting(t *testing.T) {
	_, c := newStack(t, server.Config{}, client.Options{MaxInflight: 8})

	// 2.5 protocol-maximum payloads: forces three concurrent chunks.
	n := 2*wire.MaxPayloadBytes + wire.MaxPayloadBytes/2
	data := pattern(0x9D, n)
	if _, err := c.Write(0, data); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, n)
	if _, err := c.Read(0, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, data) {
		t.Fatal("split span round trip corrupted data")
	}
}

// TestClientPipelinedConcurrency hammers one pooled client from many
// goroutines over disjoint regions — all requests share connections and
// complete out of order.
func TestClientPipelinedConcurrency(t *testing.T) {
	_, c := newStack(t, server.Config{Workers: 8},
		client.Options{Conns: 2, MaxInflight: 16})

	const workers = 8
	const opsEach = 50
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) * 128 * 1024
			buf := make([]byte, wire.BlockBytes)
			for i := 0; i < opsEach; i++ {
				addr := base + uint64(i%64)*wire.BlockBytes
				data := pattern(byte(w*37+i), wire.BlockBytes)
				if _, err := c.Write(addr, data); err != nil {
					errCh <- err
					return
				}
				if _, err := c.Read(addr, buf); err != nil {
					errCh <- err
					return
				}
				if !bytes.Equal(buf, data) {
					errCh <- errors.New("read-your-write violated")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// blockingBackend parks every ReadBlocks until released so BUSY rejections
// can be provoked deterministically.
type blockingBackend struct {
	server.Backend
	gate chan struct{}
	hits chan struct{}
}

func (b *blockingBackend) ReadBlocks(addr uint64, dst []byte) error {
	select {
	case b.hits <- struct{}{}:
	default:
	}
	<-b.gate
	return b.Backend.ReadBlocks(addr, dst)
}

// TestClientRetriesBusy saturates a MaxInflight=1 server with a parked read
// and checks a second read survives by retrying its BUSY rejections.
func TestClientRetriesBusy(t *testing.T) {
	bb := &blockingBackend{
		Backend: newBackend(t, 1<<20),
		gate:    make(chan struct{}),
		hits:    make(chan struct{}, 8),
	}
	s, c := newStack(t,
		server.Config{Backend: bb, MaxInflight: 1, RequestTimeout: -1},
		client.Options{MaxRetries: 10, RetryBackoff: 5 * time.Millisecond})

	done := make(chan error, 1)
	go func() {
		_, err := c.Read(0, make([]byte, wire.BlockBytes))
		done <- err
	}()
	<-bb.hits // the window is now full

	second := make(chan error, 1)
	go func() {
		_, err := c.Read(4096, make([]byte, wire.BlockBytes))
		second <- err
	}()
	// Hold the gate long enough that the second read is rejected BUSY at
	// least once, then release and let its retry succeed.
	deadline := time.Now().Add(2 * time.Second)
	for s.Snapshot().Server.BusyRejected == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if s.Snapshot().Server.BusyRejected == 0 {
		t.Fatal("second read never hit the BUSY path")
	}
	close(bb.gate)
	if err := <-done; err != nil {
		t.Fatalf("parked read: %v", err)
	}
	if err := <-second; err != nil {
		t.Fatalf("busy-rejected read did not recover by retrying: %v", err)
	}
}

// TestClientNeverRetriesIntegrityFailures tampers a block and checks the
// client surfaces MAC_FAIL immediately — exactly one request on the wire,
// no retry storm against tampered state.
func TestClientNeverRetriesIntegrityFailures(t *testing.T) {
	cfg := authmem.DefaultConfig(1 << 20)
	cfg.Key = testKey()
	mem, err := authmem.NewSharded(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, c := newStack(t, server.Config{Backend: mem},
		client.Options{MaxRetries: 5, RetryBackoff: time.Millisecond})

	const addr = 8192
	if _, err := c.Write(addr, pattern(1, wire.BlockBytes)); err != nil {
		t.Fatal(err)
	}
	for _, bit := range []int{1, 77, 300} { // beyond ECC correction
		if err := mem.FlipDataBit(addr, bit); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Snapshot().Server.ReadOps

	_, rerr := c.Read(addr, make([]byte, wire.BlockBytes))
	var se *client.StatusError
	if !errors.As(rerr, &se) || se.Status != wire.StatusMACFail {
		t.Fatalf("tampered read: %v, want MAC_FAIL", rerr)
	}
	if got := s.Snapshot().Server.ReadOps - before; got != 1 {
		t.Fatalf("MAC_FAIL read hit the server %d times, want exactly 1 (no retries)", got)
	}

	// The quarantined follow-up must not be retried either.
	before = s.Snapshot().Server.ReadOps
	_, rerr = c.Read(addr, make([]byte, wire.BlockBytes))
	if !errors.As(rerr, &se) || se.Status != wire.StatusQuarantined {
		t.Fatalf("quarantined read: %v, want QUARANTINED", rerr)
	}
	if got := s.Snapshot().Server.ReadOps - before; got != 1 {
		t.Fatalf("QUARANTINED read hit the server %d times, want exactly 1", got)
	}
}

// TestClientSurvivesServerRestartlessReconnect kills the transport under the
// client and checks the pool redials transparently on the next call.
func TestClientReconnects(t *testing.T) {
	backend := newBackend(t, 1<<20)
	s, err := server.New(server.Config{Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	var mu sync.Mutex
	var lastConn interface{ Close() error }
	c, err := client.New(client.Options{
		Dial: func() (nc net.Conn, err error) {
			nc, err = s.DialLoopback()
			if err == nil {
				mu.Lock()
				lastConn = nc
				mu.Unlock()
			}
			return nc, err
		},
		MaxRetries:   4,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	data := pattern(7, wire.BlockBytes)
	if _, err := c.Write(0, data); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	lastConn.Close() // sever the transport behind the client's back
	mu.Unlock()

	dst := make([]byte, wire.BlockBytes)
	if _, err := c.Read(0, dst); err != nil {
		t.Fatalf("read after severed transport: %v", err)
	}
	if !bytes.Equal(dst, data) {
		t.Fatal("reconnected read returned wrong bytes")
	}
}
