package client

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"authmem/internal/wire"
)

// session is one live transport connection plus the completion table its
// reader goroutine serves. Reconnecting replaces the whole session, so a
// stale reader can only ever fail its own generation's calls.
type session struct {
	nc net.Conn

	mu      sync.Mutex
	pending map[uint64]*call
	err     error

	wmu  sync.Mutex
	wbuf []byte
}

type call struct {
	dst  []byte
	done chan callResult
}

type callResult struct {
	h    wire.Header
	body []byte
	err  error
}

// poolConn is one slot of the client's connection pool: a current session
// plus the in-flight window bounding this slot's pipelining depth.
type poolConn struct {
	opts   *Options
	ctr    *counters
	window chan struct{}

	mu   sync.Mutex
	sess *session

	nextID atomic.Uint64
}

// errTimeout marks an attempt abandoned at RequestTimeout, so the retry
// loop can account it separately from transport failures.
var errTimeout = errors.New("request timed out")

// connect (re)dials the slot's transport and starts its reader.
func (pc *poolConn) connect() error {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.connectLocked()
}

func (pc *poolConn) connectLocked() error {
	if pc.window == nil {
		pc.window = make(chan struct{}, pc.opts.MaxInflight)
	}
	nc, err := pc.opts.Dial()
	if err != nil {
		return err
	}
	if pc.sess != nil && pc.ctr != nil {
		pc.ctr.reconnects.Add(1)
	}
	s := &session{nc: nc, pending: make(map[uint64]*call)}
	pc.sess = s
	go s.readLoop()
	return nil
}

// live returns a usable session, reconnecting if the current one broke.
func (pc *poolConn) live() (*session, error) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.sess != nil {
		pc.sess.mu.Lock()
		broken := pc.sess.err != nil
		pc.sess.mu.Unlock()
		if !broken {
			return pc.sess, nil
		}
	}
	if err := pc.connectLocked(); err != nil {
		return nil, err
	}
	return pc.sess, nil
}

func (pc *poolConn) close(err error) {
	pc.mu.Lock()
	s := pc.sess
	pc.mu.Unlock()
	if s != nil {
		s.fail(err)
		s.nc.Close()
	}
}

// roundTrip sends one request and waits for its completion. Read payloads
// land directly in dst; other payloads are returned as a fresh slice.
func (pc *poolConn) roundTrip(op wire.Op, flags uint8, addr uint64, count uint32, payload, dst []byte) (wire.Header, []byte, error) {
	pc.window <- struct{}{}
	defer func() { <-pc.window }()

	s, err := pc.live()
	if err != nil {
		return wire.Header{}, nil, err
	}
	id := pc.nextID.Add(1)
	cl := &call{dst: dst, done: make(chan callResult, 1)}
	s.mu.Lock()
	if s.err != nil {
		err := s.err
		s.mu.Unlock()
		return wire.Header{}, nil, err
	}
	s.pending[id] = cl
	s.mu.Unlock()

	h := wire.Header{Version: wire.Version, Op: op, Flags: flags, ID: id, Addr: addr, Count: count}
	s.wmu.Lock()
	s.wbuf = wire.AppendFrame(s.wbuf[:0], h, payload)
	_, werr := s.nc.Write(s.wbuf)
	s.wmu.Unlock()
	if werr != nil {
		s.forget(id)
		s.fail(fmt.Errorf("client: write: %w", werr))
		s.nc.Close()
		return wire.Header{}, nil, werr
	}

	timer := time.NewTimer(pc.opts.RequestTimeout)
	defer timer.Stop()
	select {
	case res := <-cl.done:
		return res.h, res.body, res.err
	case <-timer.C:
		s.forget(id)
		return wire.Header{}, nil, fmt.Errorf("client: %v at %#x: %w", op, addr, errTimeout)
	}
}

// readLoop matches responses to pending calls by request ID, in whatever
// order the server completes them.
func (s *session) readLoop() {
	fr := wire.NewReader(s.nc)
	for {
		h, payload, err := fr.Next()
		if err != nil {
			s.fail(fmt.Errorf("client: connection lost: %w", err))
			s.nc.Close()
			return
		}
		s.mu.Lock()
		cl := s.pending[h.ID]
		delete(s.pending, h.ID)
		s.mu.Unlock()
		if cl == nil {
			continue // completion for a timed-out call
		}
		res := callResult{h: h}
		if h.Status.Success() {
			data := payload
			var pin []byte
			if h.Flags&wire.FlagRootPin != 0 {
				// The root-pin suffix rides after the data; peel it
				// off so dst sizing below sees only the data.
				if len(data) < wire.RootPinBytes {
					res.err = fmt.Errorf("client: pinned %v response is %d bytes, shorter than the pin", h.Op, len(data))
					cl.done <- res
					continue
				}
				pin = data[len(data)-wire.RootPinBytes:]
				data = data[:len(data)-wire.RootPinBytes]
			}
			switch {
			case cl.dst != nil:
				if len(data) != len(cl.dst) {
					res.err = fmt.Errorf("client: %v payload is %d bytes, want %d", h.Op, len(data), len(cl.dst))
				} else {
					copy(cl.dst, data)
				}
			case len(data) > 0:
				res.body = append([]byte(nil), data...)
			}
			if pin != nil && res.err == nil {
				res.body = append([]byte(nil), pin...)
			}
		}
		cl.done <- res
	}
}

// forget deregisters a call (timeout or failed send).
func (s *session) forget(id uint64) {
	s.mu.Lock()
	delete(s.pending, id)
	s.mu.Unlock()
}

// fail marks the session broken and completes every pending call with err.
func (s *session) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	} else {
		err = s.err
	}
	pending := s.pending
	s.pending = make(map[uint64]*call)
	s.mu.Unlock()
	for _, cl := range pending {
		cl.done <- callResult{err: err}
	}
}
