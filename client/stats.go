package client

import "sync/atomic"

// Stats is a point-in-time snapshot of the client's own transport counters:
// how hard this client has had to work to get its calls through, independent
// of anything the server reports. Cumulative since New.
//
// The server's view of the same conversation is ServerStats.
type Stats struct {
	// Attempts counts request attempts put on the wire, including
	// re-attempts of the same logical call.
	Attempts uint64 `json:"attempts"`

	// Retries counts attempts beyond each call's first — Attempts minus
	// the number of logical calls that reached the transport.
	Retries uint64 `json:"retries"`

	// BusyDeferrals and DeadlineDeferrals count BUSY and DEADLINE
	// rejections from the server's admission control; each one backs off
	// and re-attempts (until MaxRetries).
	BusyDeferrals     uint64 `json:"busy_deferrals"`
	DeadlineDeferrals uint64 `json:"deadline_deferrals"`

	// Timeouts counts attempts abandoned because no response arrived
	// within RequestTimeout.
	Timeouts uint64 `json:"timeouts"`

	// TransportErrors counts attempts that failed below the protocol:
	// dial failures, broken writes, connections lost mid-read.
	TransportErrors uint64 `json:"transport_errors"`

	// Reconnects counts pool slots re-dialed after their session broke.
	// The initial dials in New are not reconnects.
	Reconnects uint64 `json:"reconnects"`

	// RetriesExhausted counts logical calls that failed after their last
	// permitted attempt.
	RetriesExhausted uint64 `json:"retries_exhausted"`
}

// counters is the live (atomic) form of Stats, shared by the client and its
// pool slots.
type counters struct {
	attempts          atomic.Uint64
	retries           atomic.Uint64
	busyDeferrals     atomic.Uint64
	deadlineDeferrals atomic.Uint64
	timeouts          atomic.Uint64
	transportErrors   atomic.Uint64
	reconnects        atomic.Uint64
	retriesExhausted  atomic.Uint64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Attempts:          c.attempts.Load(),
		Retries:           c.retries.Load(),
		BusyDeferrals:     c.busyDeferrals.Load(),
		DeadlineDeferrals: c.deadlineDeferrals.Load(),
		Timeouts:          c.timeouts.Load(),
		TransportErrors:   c.transportErrors.Load(),
		Reconnects:        c.reconnects.Load(),
		RetriesExhausted:  c.retriesExhausted.Load(),
	}
}

// Stats returns the client-side transport counters.
func (c *Client) Stats() Stats { return c.ctr.snapshot() }
