package client_test

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"authmem/client"
	"authmem/internal/server"
	"authmem/internal/wire"
)

// TestClientStatsCounters pins the client-side transport counters: exact
// values on a clean exchange, and the busy/retry/reconnect counters when
// trouble is provoked deterministically.
func TestClientStatsCounters(t *testing.T) {
	t.Run("clean", func(t *testing.T) {
		_, c := newStack(t, server.Config{}, client.Options{})
		if got := c.Stats(); got != (client.Stats{}) {
			t.Fatalf("fresh client counters %+v, want all zero", got)
		}
		if _, err := c.Write(0, pattern(1, wire.BlockBytes)); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Read(0, make([]byte, wire.BlockBytes)); err != nil {
			t.Fatal(err)
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		want := client.Stats{Attempts: 3}
		if got := c.Stats(); got != want {
			t.Fatalf("clean exchange counters %+v, want %+v", got, want)
		}
	})

	t.Run("busy", func(t *testing.T) {
		bb := &blockingBackend{
			Backend: newBackend(t, 1<<20),
			gate:    make(chan struct{}),
			hits:    make(chan struct{}, 8),
		}
		s, c := newStack(t,
			server.Config{Backend: bb, MaxInflight: 1, RequestTimeout: -1},
			client.Options{MaxRetries: 20, RetryBackoff: 2 * time.Millisecond})

		done := make(chan error, 1)
		go func() {
			_, err := c.Read(0, make([]byte, wire.BlockBytes))
			done <- err
		}()
		<-bb.hits // the admission window is now full

		second := make(chan error, 1)
		go func() {
			_, err := c.Read(4096, make([]byte, wire.BlockBytes))
			second <- err
		}()
		deadline := time.Now().Add(2 * time.Second)
		for s.Snapshot().Server.BusyRejected == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		close(bb.gate)
		if err := <-done; err != nil {
			t.Fatal(err)
		}
		if err := <-second; err != nil {
			t.Fatal(err)
		}
		st := c.Stats()
		if st.BusyDeferrals == 0 {
			t.Fatalf("BUSY rejections left no deferral trace: %+v", st)
		}
		if st.Retries == 0 || st.Attempts < 2+st.Retries {
			t.Fatalf("deferred call did not account its retries: %+v", st)
		}
		if st.Reconnects != 0 || st.TransportErrors != 0 || st.Timeouts != 0 {
			t.Fatalf("admission pressure polluted transport counters: %+v", st)
		}
	})

	t.Run("reconnect", func(t *testing.T) {
		s, err := server.New(server.Config{Backend: newBackend(t, 1<<20)})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		var mu sync.Mutex
		var lastConn interface{ Close() error }
		c, err := client.New(client.Options{
			Dial: func() (nc net.Conn, err error) {
				nc, err = s.DialLoopback()
				if err == nil {
					mu.Lock()
					lastConn = nc
					mu.Unlock()
				}
				return nc, err
			},
			MaxRetries:   4,
			RetryBackoff: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })

		if _, err := c.Write(0, pattern(7, wire.BlockBytes)); err != nil {
			t.Fatal(err)
		}
		if got := c.Stats().Reconnects; got != 0 {
			t.Fatalf("initial dial counted as %d reconnects", got)
		}
		mu.Lock()
		lastConn.Close() // sever the transport behind the client's back
		mu.Unlock()
		if _, err := c.Read(0, make([]byte, wire.BlockBytes)); err != nil {
			t.Fatal(err)
		}
		st := c.Stats()
		if st.Reconnects != 1 {
			t.Fatalf("Reconnects = %d, want 1: %+v", st.Reconnects, st)
		}
		if st.TransportErrors+st.Timeouts == 0 || st.Retries == 0 {
			t.Fatalf("severed transport left no error trace: %+v", st)
		}
	})
}

func TestClientHello(t *testing.T) {
	_, c := newStack(t, server.Config{NodeID: "n1", Epoch: 99}, client.Options{})
	ni, err := c.Hello()
	if err != nil {
		t.Fatal(err)
	}
	if ni.NodeID != "n1" || ni.Epoch != 99 || ni.ProtoVersion != wire.Version ||
		ni.Size != 1<<21 || ni.BlockBytes != wire.BlockBytes {
		t.Fatalf("Hello: %+v", ni)
	}
}

func TestClientPinnedOps(t *testing.T) {
	_, c := newStack(t, server.Config{}, client.Options{})

	data := pattern(0x33, 2*wire.BlockBytes)
	info, pinW, err := c.WritePinned(128, data)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != wire.StatusOK || info.Flags&wire.FlagRootPin != 0 {
		t.Fatalf("pinned write info %+v (pin flag must be stripped)", info)
	}
	root, err := c.RootDigest()
	if err != nil {
		t.Fatal(err)
	}
	if pinW != root {
		t.Fatal("write pin disagrees with RootDigest")
	}

	dst := make([]byte, len(data))
	_, pinR, err := c.ReadPinned(128, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, data) {
		t.Fatal("pinned read returned wrong bytes")
	}
	if pinR != pinW {
		t.Fatal("read pin moved with no intervening write")
	}

	pinF, err := c.FlushPinned()
	if err != nil {
		t.Fatal(err)
	}
	if pinF != pinW {
		t.Fatal("flush pin moved with no intervening write")
	}

	if _, pin2, err := c.WritePinned(0, pattern(9, wire.BlockBytes)); err != nil {
		t.Fatal(err)
	} else if pin2 == pinW {
		t.Fatal("root pin did not move across a write")
	}

	// Pinned spans are bounded by one protocol request.
	big := make([]byte, wire.MaxPayloadBytes+wire.BlockBytes)
	if _, _, err := c.WritePinned(0, big); err == nil {
		t.Fatal("oversized pinned span accepted")
	}
	if _, _, err := c.ReadPinned(3, make([]byte, wire.BlockBytes)); err == nil {
		t.Fatal("unaligned pinned read accepted")
	}
}
