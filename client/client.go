// Package client is the remote authenticated-memory client: it speaks the
// internal/wire protocol to a memserved instance (or any internal/server
// Server) and presents the familiar block-device surface — Read, Write,
// Flush, Stats, RootDigest — over the network.
//
// A Client multiplexes requests over a pool of connections, pipelining
// automatically: every in-flight call gets a request ID and waits on its
// own completion, so concurrent callers share connections without
// serializing, and responses are matched as they arrive in any order.
// Spans larger than the protocol's per-request maximum are split and issued
// as concurrent pipelined requests.
//
// Transient failures — BUSY/DEADLINE rejections, dial errors, broken
// connections — are retried with exponential backoff. Integrity verdicts
// are never retried: MAC_FAIL and QUARANTINED mean the remote memory's
// contents failed authentication, and re-asking cannot make tampered state
// verify. They surface as *StatusError.
package client

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"authmem"
	"authmem/internal/wire"
)

// Options configures a Client. Addr or Dial is required.
type Options struct {
	// Addr is the server's TCP address, used when Dial is nil.
	Addr string

	// Dial overrides the transport — e.g. (*server.Server).DialLoopback
	// for an in-process stack, or a TLS dialer.
	Dial func() (net.Conn, error)

	// Conns is the connection-pool size (default 1). Calls are spread
	// round-robin.
	Conns int

	// MaxInflight caps this client's outstanding requests per connection
	// (default 32). Keep it at or below the server's admission cap to
	// avoid systematic BUSY rejections.
	MaxInflight int

	// RequestTimeout bounds one attempt's wait for a response (default
	// 10s).
	RequestTimeout time.Duration

	// MaxRetries is how many times a retryable failure is re-attempted
	// (default 4); RetryBackoff is the initial backoff, doubling per
	// attempt (default 2ms).
	MaxRetries   int
	RetryBackoff time.Duration
}

func (o *Options) fill() error {
	if o.Dial == nil {
		if o.Addr == "" {
			return errors.New("client: Options.Addr or Options.Dial required")
		}
		addr := o.Addr
		o.Dial = func() (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		}
	}
	if o.Conns <= 0 {
		o.Conns = 1
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 32
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 10 * time.Second
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	} else if o.MaxRetries == 0 {
		o.MaxRetries = 4
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 2 * time.Millisecond
	}
	return nil
}

// StatusError is a request refused or failed by the server, carrying the
// wire status verbatim. For MAC_FAIL and QUARANTINED, Addr is the failing
// block's address.
type StatusError struct {
	Status wire.Status
	Addr   uint64
}

// Error implements error.
func (e *StatusError) Error() string {
	switch e.Status {
	case wire.StatusMACFail:
		return fmt.Sprintf("client: integrity failure (MAC_FAIL) at %#x", e.Addr)
	case wire.StatusQuarantined:
		return fmt.Sprintf("client: block at %#x is quarantined", e.Addr)
	default:
		return fmt.Sprintf("client: request failed: %v", e.Status)
	}
}

// Info reports how the server served a call.
type Info struct {
	// Status is the (worst, for split spans) wire status: StatusOK,
	// StatusRecovered, or StatusOverflowSwept on success.
	Status wire.Status
	// Flags accumulates the response info bits (FlagRetried,
	// FlagMetaRepaired, FlagCorrected).
	Flags uint8
}

// Recovered reports whether the engine's recovery ladder fired.
func (i Info) Recovered() bool { return i.Status == wire.StatusRecovered }

// Client is a remote authenticated memory handle. It is safe for
// concurrent use.
type Client struct {
	opts   Options
	conns  []*poolConn
	rr     atomic.Uint64
	closed atomic.Bool
	ctr    counters
}

// New dials the pool and returns a ready Client.
func New(opts Options) (*Client, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	c := &Client{opts: opts, conns: make([]*poolConn, opts.Conns)}
	for i := range c.conns {
		c.conns[i] = &poolConn{opts: &c.opts, ctr: &c.ctr}
		if err := c.conns[i].connect(); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// Close tears the pool down. In-flight calls fail with a transport error.
func (c *Client) Close() error {
	c.closed.Store(true)
	for _, pc := range c.conns {
		if pc != nil {
			pc.close(errors.New("client: closed"))
		}
	}
	return nil
}

// Read verifies and fetches len(dst) bytes at the block-aligned addr.
// len(dst) must be a positive multiple of the 64-byte block size. Spans
// beyond the protocol maximum are split into concurrent pipelined requests.
func (c *Client) Read(addr uint64, dst []byte) (Info, error) {
	return c.spanned(wire.OpRead, addr, nil, dst)
}

// Write stores len(src) bytes at the block-aligned addr; same span rules as
// Read.
func (c *Client) Write(addr uint64, src []byte) (Info, error) {
	return c.spanned(wire.OpWrite, addr, src, nil)
}

// Flush brings the remote region to a quiescent point: all deferred Merkle
// maintenance lands before it returns.
func (c *Client) Flush() error {
	_, _, err := c.do(wire.OpFlush, 0, 0, 0, nil, nil)
	return err
}

// ServerStats fetches the server's statistics snapshot. The client's own
// transport counters are Stats.
func (c *Client) ServerStats() (wire.StatsSnapshot, error) {
	var snap wire.StatsSnapshot
	_, body, err := c.do(wire.OpStats, 0, 0, 0, nil, nil)
	if err != nil {
		return snap, err
	}
	return snap, json.Unmarshal(body, &snap)
}

// Hello fetches the server's identity: its stable node ID, the epoch of the
// current process incarnation, and the region geometry. A cluster layer uses
// the epoch to detect node restarts — an epoch change means everything the
// node held is gone.
func (c *Client) Hello() (wire.NodeInfo, error) {
	var ni wire.NodeInfo
	_, body, err := c.do(wire.OpHello, 0, 0, 0, nil, nil)
	if err != nil {
		return ni, err
	}
	return ni, json.Unmarshal(body, &ni)
}

// RootDigest fetches the trusted root digest over the remote region's
// current state.
func (c *Client) RootDigest() (authmem.RootDigest, error) {
	var d authmem.RootDigest
	_, body, err := c.do(wire.OpRootDigest, 0, 0, 0, nil, nil)
	if err != nil {
		return d, err
	}
	if len(body) != len(d) {
		return d, fmt.Errorf("client: root digest is %d bytes, want %d", len(body), len(d))
	}
	copy(d[:], body)
	return d, nil
}

// ReadPinned is Read plus an attestation: the server appends its trusted
// root digest, computed at a quiescent point after serving the read, to the
// response. Unlike a separate RootDigest call, the pin is atomic with the
// read on the server's execution path. The span must fit one protocol
// request (wire.MaxPayloadBytes); larger spans would split and each chunk
// would pin a different root.
func (c *Client) ReadPinned(addr uint64, dst []byte) (Info, authmem.RootDigest, error) {
	return c.pinned(wire.OpRead, addr, nil, dst)
}

// WritePinned is Write plus an attestation of the post-write root. Same
// span bound as ReadPinned.
func (c *Client) WritePinned(addr uint64, src []byte) (Info, authmem.RootDigest, error) {
	return c.pinned(wire.OpWrite, addr, src, nil)
}

// FlushPinned flushes and returns the root digest of the quiescent state in
// one round trip.
func (c *Client) FlushPinned() (authmem.RootDigest, error) {
	var d authmem.RootDigest
	h, body, err := c.do(wire.OpFlush, wire.FlagRootPin, 0, 0, nil, nil)
	if err != nil {
		return d, err
	}
	if h.Flags&wire.FlagRootPin == 0 || len(body) != len(d) {
		return d, errors.New("client: server did not pin the flush response")
	}
	copy(d[:], body)
	return d, nil
}

// pinned performs one root-pinned data request.
func (c *Client) pinned(op wire.Op, addr uint64, src, dst []byte) (Info, authmem.RootDigest, error) {
	var d authmem.RootDigest
	data := src
	if op == wire.OpRead {
		data = dst
	}
	if len(data) == 0 || len(data)%wire.BlockBytes != 0 {
		return Info{}, d, fmt.Errorf("client: span of %d bytes is not a positive multiple of %d", len(data), wire.BlockBytes)
	}
	if len(data) > wire.MaxPayloadBytes {
		return Info{}, d, fmt.Errorf("client: pinned span of %d bytes exceeds the %d-byte request maximum", len(data), wire.MaxPayloadBytes)
	}
	if addr%wire.BlockBytes != 0 {
		return Info{}, d, fmt.Errorf("client: address %#x not %d-byte aligned", addr, wire.BlockBytes)
	}
	h, body, err := c.do(op, wire.FlagRootPin, addr, uint32(len(data)/wire.BlockBytes), src, dst)
	if err != nil {
		return Info{}, d, err
	}
	if h.Flags&wire.FlagRootPin == 0 || len(body) != len(d) {
		return Info{}, d, fmt.Errorf("client: server did not pin the %v response", op)
	}
	copy(d[:], body)
	return Info{Status: h.Status, Flags: h.Flags &^ wire.FlagRootPin}, d, nil
}

// spanned validates a data span, splits it into protocol-sized chunks, and
// issues the chunks as concurrent pipelined requests.
func (c *Client) spanned(op wire.Op, addr uint64, src, dst []byte) (Info, error) {
	data := src
	if op == wire.OpRead {
		data = dst
	}
	if len(data) == 0 || len(data)%wire.BlockBytes != 0 {
		return Info{}, fmt.Errorf("client: span of %d bytes is not a positive multiple of %d", len(data), wire.BlockBytes)
	}
	if addr%wire.BlockBytes != 0 {
		return Info{}, fmt.Errorf("client: address %#x not %d-byte aligned", addr, wire.BlockBytes)
	}
	if len(data) <= wire.MaxPayloadBytes {
		return c.chunk(op, addr, src, dst)
	}
	type part struct {
		info Info
		err  error
	}
	var chunks int
	for off := 0; off < len(data); off += wire.MaxPayloadBytes {
		chunks++
	}
	results := make(chan part, chunks)
	for off := 0; off < len(data); off += wire.MaxPayloadBytes {
		end := min(off+wire.MaxPayloadBytes, len(data))
		go func(off, end int) {
			var p part
			if op == wire.OpRead {
				p.info, p.err = c.chunk(op, addr+uint64(off), nil, dst[off:end])
			} else {
				p.info, p.err = c.chunk(op, addr+uint64(off), src[off:end], nil)
			}
			results <- p
		}(off, end)
	}
	var info Info
	var firstErr error
	for i := 0; i < chunks; i++ {
		p := <-results
		info.Flags |= p.info.Flags
		if p.info.Status > info.Status {
			info.Status = p.info.Status
		}
		if p.err != nil && firstErr == nil {
			firstErr = p.err
		}
	}
	return info, firstErr
}

// chunk performs one protocol-sized request.
func (c *Client) chunk(op wire.Op, addr uint64, src, dst []byte) (Info, error) {
	count := uint32(len(src) / wire.BlockBytes)
	if op == wire.OpRead {
		count = uint32(len(dst) / wire.BlockBytes)
	}
	h, _, err := c.do(op, 0, addr, count, src, dst)
	if err != nil {
		return Info{}, err
	}
	return Info{Status: h.Status, Flags: h.Flags}, nil
}

// do issues one request with retry-with-backoff. Reads land directly in
// dst; control-op payloads (and root pins) are returned as a fresh slice.
func (c *Client) do(op wire.Op, flags uint8, addr uint64, count uint32, payload, dst []byte) (wire.Header, []byte, error) {
	var lastErr error
	backoff := c.opts.RetryBackoff
	for attempt := 0; attempt <= c.opts.MaxRetries; attempt++ {
		if attempt > 0 {
			c.ctr.retries.Add(1)
			time.Sleep(backoff)
			backoff *= 2
		}
		if c.closed.Load() {
			return wire.Header{}, nil, errors.New("client: closed")
		}
		c.ctr.attempts.Add(1)
		pc := c.conns[c.rr.Add(1)%uint64(len(c.conns))]
		h, body, err := pc.roundTrip(op, flags, addr, count, payload, dst)
		if err != nil {
			if errors.Is(err, errTimeout) {
				c.ctr.timeouts.Add(1)
			} else {
				c.ctr.transportErrors.Add(1)
			}
			lastErr = err // transport trouble: retry (another conn, redial)
			continue
		}
		if h.Status.Success() {
			return h, body, nil
		}
		serr := &StatusError{Status: h.Status, Addr: h.Addr}
		if !h.Status.Retryable() {
			return wire.Header{}, nil, serr
		}
		switch h.Status {
		case wire.StatusBusy:
			c.ctr.busyDeferrals.Add(1)
		case wire.StatusDeadline:
			c.ctr.deadlineDeferrals.Add(1)
		}
		lastErr = serr
	}
	c.ctr.retriesExhausted.Add(1)
	return wire.Header{}, nil, fmt.Errorf("client: retries exhausted: %w", lastErr)
}
