package authmem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func ioMem(t testing.TB) *Memory {
	t.Helper()
	cfg := testConfig(DeltaEncoding, MACInECC)
	return newMem(t, cfg)
}

func TestReadAtWriteAtAligned(t *testing.T) {
	m := ioMem(t)
	data := make([]byte, 3*BlockSize)
	rand.New(rand.NewSource(1)).Read(data)
	if n, err := m.WriteAt(data, 2*BlockSize); err != nil || n != len(data) {
		t.Fatalf("WriteAt: n=%d err=%v", n, err)
	}
	got := make([]byte, len(data))
	if n, err := m.ReadAt(got, 2*BlockSize); err != nil || n != len(got) {
		t.Fatalf("ReadAt: n=%d err=%v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("aligned round trip corrupted data")
	}
}

func TestWriteAtUnalignedMergesNeighbors(t *testing.T) {
	m := ioMem(t)
	base := make([]byte, 2*BlockSize)
	for i := range base {
		base[i] = 0xEE
	}
	if _, err := m.WriteAt(base, 0); err != nil {
		t.Fatal(err)
	}
	// Overwrite 10 bytes straddling the block boundary.
	patch := []byte("0123456789")
	if n, err := m.WriteAt(patch, BlockSize-5); err != nil || n != 10 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	got := make([]byte, 2*BlockSize)
	if _, err := m.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), base...)
	copy(want[BlockSize-5:], patch)
	if !bytes.Equal(got, want) {
		t.Fatal("unaligned write did not merge correctly")
	}
}

func TestReadAtUnaligned(t *testing.T) {
	m := ioMem(t)
	data := make([]byte, 4*BlockSize)
	rand.New(rand.NewSource(2)).Read(data)
	if _, err := m.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 100)
	if _, err := m.ReadAt(got, 37); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[37:137]) {
		t.Fatal("unaligned read wrong")
	}
}

func TestReadAtWriteAtPropertyRoundTrip(t *testing.T) {
	m := ioMem(t)
	f := func(seed int64, offSeed uint32, lenSeed uint16) bool {
		off := int64(offSeed % (1 << 18))
		length := int(lenSeed%300) + 1
		data := make([]byte, length)
		rand.New(rand.NewSource(seed)).Read(data)
		if n, err := m.WriteAt(data, off); err != nil || n != length {
			return false
		}
		got := make([]byte, length)
		if n, err := m.ReadAt(got, off); err != nil || n != length {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestReadAtNegativeOffset(t *testing.T) {
	m := ioMem(t)
	if _, err := m.ReadAt(make([]byte, 8), -1); err == nil {
		t.Fatal("negative offset should fail")
	}
	if _, err := m.WriteAt(make([]byte, 8), -1); err == nil {
		t.Fatal("negative offset should fail")
	}
}

func TestReadAtOutOfRegion(t *testing.T) {
	m := ioMem(t)
	size := int64(1 << 20)
	if _, err := m.ReadAt(make([]byte, 128), size-64); err == nil {
		t.Fatal("read crossing the region end should fail")
	}
	if _, err := m.WriteAt(make([]byte, 128), size-64); err == nil {
		t.Fatal("write crossing the region end should fail")
	}
}

func TestWriteAtTamperedNeighborRefused(t *testing.T) {
	// A partial write must not silently merge with tampered data: the
	// read-modify-write's verify step fails first.
	m := ioMem(t)
	if _, err := m.WriteAt(bytes.Repeat([]byte{1}, BlockSize), 0); err != nil {
		t.Fatal(err)
	}
	for _, bit := range []int{0, 9, 200} {
		if err := m.FlipDataBit(0, bit); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.WriteAt([]byte("xy"), 10); err == nil {
		t.Fatal("partial write over tampered block should fail")
	}
}

func TestReadAtZeroLength(t *testing.T) {
	m := ioMem(t)
	if n, err := m.ReadAt(nil, 0); err != nil || n != 0 {
		t.Fatalf("zero-length read: n=%d err=%v", n, err)
	}
	if n, err := m.WriteAt(nil, 0); err != nil || n != 0 {
		t.Fatalf("zero-length write: n=%d err=%v", n, err)
	}
}
