package authmem

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func testConfig(scheme CounterScheme, placement MACPlacement) Config {
	cfg := DefaultConfig(1 << 20)
	cfg.Scheme = scheme
	cfg.Placement = placement
	cfg.Key = testKey()
	return cfg
}

func testKey() []byte {
	k := make([]byte, KeySize)
	for i := range k {
		k[i] = byte(i*3 + 1)
	}
	return k
}

func newMem(t testing.TB, cfg Config) *Memory {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero config should fail")
	}
	cfg := testConfig(DeltaEncoding, MACInECC)
	cfg.Key = cfg.Key[:10]
	if _, err := New(cfg); err == nil {
		t.Fatal("short key should fail")
	}
	cfg = testConfig(CounterScheme(42), MACInECC)
	if _, err := New(cfg); err == nil {
		t.Fatal("unknown scheme should fail")
	}
}

func TestSchemeString(t *testing.T) {
	names := map[CounterScheme]string{
		Monolithic:      "monolithic-56",
		SplitCounter:    "split-7",
		DeltaEncoding:   "delta-7",
		DualLengthDelta: "dual-length",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
	if CounterScheme(9).String() != "CounterScheme(9)" {
		t.Error("unknown scheme name")
	}
}

func TestRoundTripAllSchemes(t *testing.T) {
	for _, s := range []CounterScheme{Monolithic, SplitCounter, DeltaEncoding, DualLengthDelta} {
		for _, p := range []MACPlacement{MACInECC, InlineMAC} {
			m := newMem(t, testConfig(s, p))
			data := make([]byte, BlockSize)
			rand.New(rand.NewSource(1)).Read(data)
			if err := m.Write(0x1000, data); err != nil {
				t.Fatalf("%v/%v: %v", s, p, err)
			}
			got := make([]byte, BlockSize)
			if _, err := m.Read(0x1000, got); err != nil {
				t.Fatalf("%v/%v: %v", s, p, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%v/%v: data corrupted", s, p)
			}
		}
	}
}

func TestTamperDetection(t *testing.T) {
	m := newMem(t, testConfig(DeltaEncoding, MACInECC))
	data := make([]byte, BlockSize)
	if err := m.Write(0, data); err != nil {
		t.Fatal(err)
	}
	// Three flips exceed the correction budget and must be refused.
	for _, b := range []int{1, 100, 300} {
		if err := m.FlipDataBit(0, b); err != nil {
			t.Fatal(err)
		}
	}
	var ie *IntegrityError
	if _, err := m.Read(0, data); !errors.As(err, &ie) {
		t.Fatalf("tampering undetected: %v", err)
	}
	if m.Stats().IntegrityFailures == 0 {
		t.Fatal("stats missed the failure")
	}
}

func TestFaultCorrection(t *testing.T) {
	m := newMem(t, testConfig(DeltaEncoding, MACInECC))
	want := make([]byte, BlockSize)
	rand.New(rand.NewSource(2)).Read(want)
	if err := m.Write(64, want); err != nil {
		t.Fatal(err)
	}
	if err := m.FlipDataBit(64, 77); err != nil {
		t.Fatal(err)
	}
	if err := m.FlipDataBit(64, 401); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, BlockSize)
	info, err := m.Read(64, got)
	if err != nil {
		t.Fatal(err)
	}
	if info.CorrectedDataBits != 2 || !bytes.Equal(got, want) {
		t.Fatalf("correction failed: %+v", info)
	}
}

func TestReplayDetection(t *testing.T) {
	m := newMem(t, testConfig(DeltaEncoding, MACInECC))
	old := bytes.Repeat([]byte{0x11}, BlockSize)
	if err := m.Write(128, old); err != nil {
		t.Fatal(err)
	}
	snap, err := m.Snapshot(128)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Write(128, bytes.Repeat([]byte{0x22}, BlockSize)); err != nil {
		t.Fatal(err)
	}
	if err := m.Replay(snap); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, BlockSize)
	var ie *IntegrityError
	if _, err := m.Read(128, dst); !errors.As(err, &ie) {
		t.Fatalf("replay undetected: %v", err)
	}
}

func TestCounterBitTamper(t *testing.T) {
	for _, s := range []CounterScheme{Monolithic, DeltaEncoding} {
		m := newMem(t, testConfig(s, MACInECC))
		if err := m.Write(0, make([]byte, BlockSize)); err != nil {
			t.Fatal(err)
		}
		if err := m.FlipCounterBit(0, 3); err != nil {
			t.Fatal(err)
		}
		dst := make([]byte, BlockSize)
		if _, err := m.Read(0, dst); err == nil {
			t.Fatalf("%v: counter tamper undetected", s)
		}
	}
}

func TestScrub(t *testing.T) {
	m := newMem(t, testConfig(DeltaEncoding, MACInECC))
	for i := uint64(0); i < 8; i++ {
		if err := m.Write(i*BlockSize, make([]byte, BlockSize)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.FlipDataBit(2*BlockSize, 7); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.ParityFlagged != 1 || rep.Corrected != 1 {
		t.Fatalf("scrub report %+v", rep)
	}
	// Inline placement has no scrub lane.
	inline := newMem(t, testConfig(DeltaEncoding, InlineMAC))
	if _, err := inline.Scrub(); err == nil {
		t.Fatal("scrub under InlineMAC should fail")
	}
}

func TestCounterStatsExposeReencryptions(t *testing.T) {
	m := newMem(t, testConfig(SplitCounter, MACInECC))
	data := make([]byte, BlockSize)
	for i := 0; i < 200; i++ {
		if err := m.Write(0, data); err != nil {
			t.Fatal(err)
		}
	}
	st := m.CounterStats()
	if st.Writes != 200 || st.Reencryptions == 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestComputeOverhead(t *testing.T) {
	proposed := DefaultConfig(512 << 20)
	proposed.Key = testKey()
	po, err := ComputeOverhead(proposed)
	if err != nil {
		t.Fatal(err)
	}
	baseline := proposed
	baseline.Scheme = Monolithic
	baseline.Placement = InlineMAC
	bo, err := ComputeOverhead(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if po.EncryptionOverheadPct() > 3 {
		t.Fatalf("proposed overhead %.2f%%", po.EncryptionOverheadPct())
	}
	if bo.EncryptionOverheadPct() < 20 {
		t.Fatalf("baseline overhead %.2f%%", bo.EncryptionOverheadPct())
	}
	if _, err := ComputeOverhead(Config{}); err == nil {
		t.Fatal("zero config should fail")
	}
}

func TestClassicDataTreeFacade(t *testing.T) {
	cfg := testConfig(Monolithic, InlineMAC)
	cfg.ClassicDataTree = true
	m := newMem(t, cfg)
	data := make([]byte, BlockSize)
	rand.New(rand.NewSource(9)).Read(data)
	if err := m.Write(0x800, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, BlockSize)
	if _, err := m.Read(0x800, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("classic design round trip corrupted data")
	}
	// Its overhead dwarfs the proposed design's.
	o, err := ComputeOverhead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if o.EncryptionOverheadPct() < 30 {
		t.Fatalf("classic overhead %.1f%%, expected ~38%%", o.EncryptionOverheadPct())
	}
}

func TestDefaultConfigDefaults(t *testing.T) {
	cfg := DefaultConfig(1 << 20)
	cfg.Key = testKey()
	cfg.MetadataCacheBytes = 0
	cfg.MetadataCacheWays = 0
	cfg.OnChipTreeBytes = 0
	if _, err := New(cfg); err != nil {
		t.Fatalf("zero-default fields should be filled: %v", err)
	}
}

func BenchmarkMemoryWrite(b *testing.B) {
	cfg := testConfig(DeltaEncoding, MACInECC)
	m := newMem(b, cfg)
	data := make([]byte, BlockSize)
	b.SetBytes(BlockSize)
	for i := 0; i < b.N; i++ {
		if err := m.Write(uint64(i%8192)*BlockSize, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemoryRead(b *testing.B) {
	cfg := testConfig(DeltaEncoding, MACInECC)
	m := newMem(b, cfg)
	data := make([]byte, BlockSize)
	for i := 0; i < 8192; i++ {
		if err := m.Write(uint64(i)*BlockSize, data); err != nil {
			b.Fatal(err)
		}
	}
	dst := make([]byte, BlockSize)
	b.SetBytes(BlockSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Read(uint64(i%8192)*BlockSize, dst); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFacadeAttackSurface(t *testing.T) {
	// The remaining facade attack methods: ECC-lane flip (healed), inline
	// MAC flip (detected), tree-node flip (detected), splice (detected).
	m := newMem(t, testConfig(DeltaEncoding, MACInECC))
	want := make([]byte, BlockSize)
	rand.New(rand.NewSource(20)).Read(want)
	if err := m.Write(0, want); err != nil {
		t.Fatal(err)
	}
	if err := m.FlipECCBit(0, 11); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, BlockSize)
	info, err := m.Read(0, dst)
	if err != nil || info.CorrectedMACBits != 1 {
		t.Fatalf("ECC-lane fault not healed: %+v %v", info, err)
	}

	inline := newMem(t, testConfig(DeltaEncoding, InlineMAC))
	if err := inline.Write(0, want); err != nil {
		t.Fatal(err)
	}
	if err := inline.FlipMACBit(0, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := inline.Read(0, dst); err == nil {
		t.Fatal("inline MAC flip undetected")
	}

	// Tree node attack needs off-chip levels: shrink the root budget.
	cfg := testConfig(DeltaEncoding, MACInECC)
	cfg.OnChipTreeBytes = 64
	deep := newMem(t, cfg)
	if err := deep.Write(0, want); err != nil {
		t.Fatal(err)
	}
	if err := deep.FlipTreeNodeBit(0, 0, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := deep.Read(0, dst); err == nil {
		t.Fatal("tree-node flip undetected")
	}

	// Splice through the facade.
	sp := newMem(t, testConfig(DeltaEncoding, MACInECC))
	if err := sp.Write(0, want); err != nil {
		t.Fatal(err)
	}
	if err := sp.Write(BlockSize, want); err != nil {
		t.Fatal(err)
	}
	snap, err := sp.Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Splice(snap, BlockSize); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Read(BlockSize, dst); err == nil {
		t.Fatal("splice undetected")
	}
}

func TestComputeOverheadClassicAndDisabled(t *testing.T) {
	cfg := testConfig(Monolithic, InlineMAC)
	cfg.ClassicDataTree = true
	o, err := ComputeOverhead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain := testConfig(Monolithic, InlineMAC)
	po, err := ComputeOverhead(plain)
	if err != nil {
		t.Fatal(err)
	}
	if o.TreeBytes <= po.TreeBytes {
		t.Fatal("classic tree should dwarf the bonsai tree")
	}
}
